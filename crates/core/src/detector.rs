//! Timeout-based failure detection (§IV-A).
//!
//! Each client autonomously tracks per-server timeouts. "The timeout
//! counter is implemented to mitigate the risk of false positives,
//! ensuring that transient network delays do not prematurely trigger error
//! handling"; once the count for a node reaches `timeout_limit`, the node
//! is flagged failed. A success resets the node's counter (it was a blip,
//! not a death). There is deliberately **no inter-node communication**:
//! every client converges on its own, as in the paper.
//!
//! Beyond the artifact's plain consecutive counter, timeouts here age out
//! of a **sliding suspicion window**: only timeouts within
//! `suspicion_window` of the latest one count toward `timeout_limit`.
//! Sporadic timeouts spread over a long run therefore decay instead of
//! accumulating into a false positive — a degraded-but-alive node that
//! answers most requests is never declared dead.

use ftc_hashring::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Detector tuning, mirroring the original artifact's `TIMEOUT_SECONDS`
/// (the per-RPC TTL) and `TIMEOUT_LIMIT` (timeouts before a node is
/// declared failed), plus the sliding window that makes the count decay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Per-RPC deadline. "The TTL parameter only needs to be greater than
    /// the longest observed latency" (§IV-A).
    pub ttl: Duration,
    /// Timeouts within the suspicion window before declaring the node
    /// failed.
    pub timeout_limit: u32,
    /// Only timeouts at most this much older than the newest one count.
    /// A very large value recovers the artifact's pure consecutive-count
    /// behavior (timeouts then only reset on success).
    pub suspicion_window: Duration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            ttl: Duration::from_millis(100),
            timeout_limit: 3,
            suspicion_window: Duration::from_secs(2),
        }
    }
}

/// Verdict after recording one more timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Still under the limit; the caller should treat the node as slow,
    /// not dead (and may redirect just this request).
    Suspect {
        /// Consecutive timeouts so far.
        count: u32,
    },
    /// The limit was reached by this timeout: the node is now failed.
    /// Returned exactly once per failure — the transition edge.
    JustFailed,
    /// The node had already been declared failed earlier.
    AlreadyFailed,
}

/// Per-client failure detector state.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    config: DetectorConfig,
    timeouts: HashMap<NodeId, VecDeque<Instant>>,
    failed: HashSet<NodeId>,
}

impl FailureDetector {
    /// Fresh detector.
    pub fn new(config: DetectorConfig) -> Self {
        FailureDetector {
            config,
            timeouts: HashMap::new(),
            failed: HashSet::new(),
        }
    }

    /// The configured per-RPC TTL.
    pub fn ttl(&self) -> Duration {
        self.config.ttl
    }

    /// Record a timeout against `node` with an explicit clock reading —
    /// callers stamp with their injected [`ftc_time::ClockHandle`], so the
    /// detector itself never consults a wall clock. Timeouts older than
    /// `suspicion_window` relative to `at` are purged before counting.
    pub fn record_timeout_at(&mut self, node: NodeId, at: Instant) -> Verdict {
        if self.failed.contains(&node) {
            return Verdict::AlreadyFailed;
        }
        let window = self.timeouts.entry(node).or_default();
        if let Some(cutoff) = at.checked_sub(self.config.suspicion_window) {
            while window.front().is_some_and(|&t| t < cutoff) {
                window.pop_front();
            }
        }
        window.push_back(at);
        let count = window.len() as u32;
        if count >= self.config.timeout_limit {
            self.failed.insert(node);
            self.timeouts.remove(&node);
            Verdict::JustFailed
        } else {
            Verdict::Suspect { count }
        }
    }

    /// Record a successful response from `node`: clears its suspicion
    /// window entirely, even mid-decay (false-positive damping). Succeeding
    /// after having been declared failed does *not* resurrect it —
    /// resurrection is an explicit membership decision
    /// ([`Self::clear_failed`]).
    pub fn record_success(&mut self, node: NodeId) {
        self.timeouts.remove(&node);
    }

    /// Whether `node` has been declared failed.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed.contains(&node)
    }

    /// All nodes declared failed, ascending.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.failed.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Timeouts currently remembered against `node` (0 if none or failed).
    /// Expired entries are dropped lazily, at the next recorded timeout.
    pub fn suspect_count(&self, node: NodeId) -> u32 {
        self.timeouts.get(&node).map_or(0, |w| w.len() as u32)
    }

    /// Whether `node` is currently under suspicion at clock reading `at`:
    /// at least one timeout inside the sliding window, but not (yet)
    /// declared failed. Unlike [`Self::suspect_count`] this ignores
    /// entries that have already aged past the window, so a long-quiet
    /// node reads as healthy even before the lazy purge runs. Callers use
    /// this to stop sending best-effort traffic (replica writes) to a
    /// node that is probably about to be declared dead.
    pub fn is_suspect_at(&self, node: NodeId, at: Instant) -> bool {
        if self.failed.contains(&node) {
            return false;
        }
        let Some(window) = self.timeouts.get(&node) else {
            return false;
        };
        match at.checked_sub(self.config.suspicion_window) {
            Some(cutoff) => window.iter().any(|&t| t >= cutoff),
            None => !window.is_empty(),
        }
    }

    /// Administratively declare `node` failed (e.g. out-of-band notice).
    pub fn mark_failed(&mut self, node: NodeId) {
        self.failed.insert(node);
        self.timeouts.remove(&node);
    }

    /// Forget that `node` failed (elastic rejoin after repair).
    pub fn clear_failed(&mut self, node: NodeId) -> bool {
        self.failed.remove(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Wall-stamped conveniences for these tests only — production code
    /// always passes an explicit clock reading.
    trait WallStamped {
        fn record_timeout(&mut self, node: NodeId) -> Verdict;
    }

    impl WallStamped for FailureDetector {
        fn record_timeout(&mut self, node: NodeId) -> Verdict {
            self.record_timeout_at(node, Instant::now())
        }
    }

    fn det(limit: u32) -> FailureDetector {
        FailureDetector::new(DetectorConfig {
            ttl: Duration::from_millis(10),
            timeout_limit: limit,
            suspicion_window: Duration::from_secs(3600),
        })
    }

    fn windowed(limit: u32, window: Duration) -> FailureDetector {
        FailureDetector::new(DetectorConfig {
            ttl: Duration::from_millis(10),
            timeout_limit: limit,
            suspicion_window: window,
        })
    }

    #[test]
    fn fails_exactly_at_limit() {
        let mut d = det(3);
        let n = NodeId(1);
        assert_eq!(d.record_timeout(n), Verdict::Suspect { count: 1 });
        assert_eq!(d.record_timeout(n), Verdict::Suspect { count: 2 });
        assert_eq!(d.record_timeout(n), Verdict::JustFailed);
        assert!(d.is_failed(n));
        assert_eq!(d.record_timeout(n), Verdict::AlreadyFailed);
    }

    #[test]
    fn success_resets_consecutive_count() {
        let mut d = det(3);
        let n = NodeId(2);
        d.record_timeout(n);
        d.record_timeout(n);
        d.record_success(n);
        assert_eq!(d.suspect_count(n), 0);
        // Needs the full limit again.
        assert_eq!(d.record_timeout(n), Verdict::Suspect { count: 1 });
        assert!(!d.is_failed(n));
    }

    #[test]
    fn limit_one_is_immediate() {
        let mut d = det(1);
        assert_eq!(d.record_timeout(NodeId(0)), Verdict::JustFailed);
    }

    #[test]
    fn nodes_tracked_independently() {
        let mut d = det(2);
        d.record_timeout(NodeId(0));
        d.record_timeout(NodeId(1));
        assert_eq!(d.record_timeout(NodeId(0)), Verdict::JustFailed);
        assert!(!d.is_failed(NodeId(1)));
        assert_eq!(d.failed_nodes(), vec![NodeId(0)]);
    }

    #[test]
    fn success_after_failure_does_not_resurrect() {
        let mut d = det(1);
        d.record_timeout(NodeId(3));
        d.record_success(NodeId(3));
        assert!(d.is_failed(NodeId(3)));
    }

    #[test]
    fn mark_and_clear() {
        let mut d = det(5);
        d.mark_failed(NodeId(7));
        assert!(d.is_failed(NodeId(7)));
        assert!(d.clear_failed(NodeId(7)));
        assert!(!d.is_failed(NodeId(7)));
        assert!(!d.clear_failed(NodeId(7)));
        // After clearing, failure detection restarts from zero.
        assert_eq!(d.record_timeout(NodeId(7)), Verdict::Suspect { count: 1 });
    }

    #[test]
    fn sporadic_timeouts_decay_out_of_the_window() {
        // Pins the decay semantics: a timeout only counts while it is at
        // most `suspicion_window` older than the newest one.
        let mut d = windowed(3, Duration::from_millis(100));
        let n = NodeId(1);
        let base = Instant::now();
        assert_eq!(d.record_timeout_at(n, base), Verdict::Suspect { count: 1 });
        assert_eq!(
            d.record_timeout_at(n, base + Duration::from_millis(60)),
            Verdict::Suspect { count: 2 }
        );
        // 170ms: both earlier timeouts are now older than the window, so
        // this third timeout does NOT reach the limit of 3.
        assert_eq!(
            d.record_timeout_at(n, base + Duration::from_millis(170)),
            Verdict::Suspect { count: 1 }
        );
        assert!(!d.is_failed(n));
    }

    #[test]
    fn dense_timeouts_within_window_still_fail() {
        let mut d = windowed(3, Duration::from_millis(100));
        let n = NodeId(1);
        let base = Instant::now();
        d.record_timeout_at(n, base);
        d.record_timeout_at(n, base + Duration::from_millis(20));
        assert_eq!(
            d.record_timeout_at(n, base + Duration::from_millis(40)),
            Verdict::JustFailed
        );
        assert!(d.is_failed(n));
    }

    #[test]
    fn partial_decay_keeps_recent_entries() {
        // Only the entries beyond the window age out, not the whole count.
        let mut d = windowed(3, Duration::from_millis(100));
        let n = NodeId(2);
        let base = Instant::now();
        d.record_timeout_at(n, base);
        d.record_timeout_at(n, base + Duration::from_millis(90));
        // 150ms: the base entry expired (cutoff 50ms) but 90ms survives,
        // so this lands at count 2 — and a further timeout at 170ms makes
        // three within the window: failure.
        assert_eq!(
            d.record_timeout_at(n, base + Duration::from_millis(150)),
            Verdict::Suspect { count: 2 }
        );
        assert_eq!(
            d.record_timeout_at(n, base + Duration::from_millis(170)),
            Verdict::JustFailed
        );
    }

    #[test]
    fn success_clears_partially_elapsed_window() {
        let mut d = windowed(2, Duration::from_millis(100));
        let n = NodeId(3);
        let base = Instant::now();
        d.record_timeout_at(n, base + Duration::from_millis(50));
        d.record_success(n);
        assert_eq!(d.suspect_count(n), 0);
        // The cleared entry must not combine with a new one.
        assert_eq!(
            d.record_timeout_at(n, base + Duration::from_millis(60)),
            Verdict::Suspect { count: 1 }
        );
        assert!(!d.is_failed(n));
    }

    #[test]
    fn suspicion_tracks_the_window_and_clears_on_failure() {
        let mut d = windowed(3, Duration::from_millis(100));
        let n = NodeId(4);
        let base = Instant::now();
        assert!(!d.is_suspect_at(n, base), "clean node is not suspect");
        d.record_timeout_at(n, base);
        assert!(d.is_suspect_at(n, base + Duration::from_millis(50)));
        // The lone timeout ages out of the window without any purge.
        assert!(!d.is_suspect_at(n, base + Duration::from_millis(150)));
        // A declared-failed node is failed, not suspect.
        d.mark_failed(n);
        assert!(!d.is_suspect_at(n, base + Duration::from_millis(50)));
        assert!(d.is_failed(n));
    }

    #[test]
    fn default_config_is_sane() {
        let c = DetectorConfig::default();
        assert!(c.timeout_limit >= 1);
        assert!(c.ttl > Duration::ZERO);
        let d = FailureDetector::new(c);
        assert_eq!(d.ttl(), c.ttl);
    }
}
