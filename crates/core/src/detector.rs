//! Timeout-based failure detection (§IV-A).
//!
//! Each client autonomously tracks per-server consecutive timeouts. "The
//! timeout counter is implemented to mitigate the risk of false positives,
//! ensuring that transient network delays do not prematurely trigger error
//! handling"; once the count for a node reaches `timeout_limit`, the node
//! is flagged failed. A success resets the node's counter (it was a blip,
//! not a death). There is deliberately **no inter-node communication**:
//! every client converges on its own, as in the paper.

use ftc_hashring::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::Duration;

/// Detector tuning, mirroring the original artifact's `TIMEOUT_SECONDS`
/// (the per-RPC TTL) and `TIMEOUT_LIMIT` (consecutive timeouts before a
/// node is declared failed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Per-RPC deadline. "The TTL parameter only needs to be greater than
    /// the longest observed latency" (§IV-A).
    pub ttl: Duration,
    /// Consecutive timeouts before declaring the node failed.
    pub timeout_limit: u32,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            ttl: Duration::from_millis(100),
            timeout_limit: 3,
        }
    }
}

/// Verdict after recording one more timeout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Still under the limit; the caller should treat the node as slow,
    /// not dead (and may redirect just this request).
    Suspect {
        /// Consecutive timeouts so far.
        count: u32,
    },
    /// The limit was reached by this timeout: the node is now failed.
    /// Returned exactly once per failure — the transition edge.
    JustFailed,
    /// The node had already been declared failed earlier.
    AlreadyFailed,
}

/// Per-client failure detector state.
#[derive(Debug, Clone)]
pub struct FailureDetector {
    config: DetectorConfig,
    counts: HashMap<NodeId, u32>,
    failed: HashSet<NodeId>,
}

impl FailureDetector {
    /// Fresh detector.
    pub fn new(config: DetectorConfig) -> Self {
        FailureDetector {
            config,
            counts: HashMap::new(),
            failed: HashSet::new(),
        }
    }

    /// The configured per-RPC TTL.
    pub fn ttl(&self) -> Duration {
        self.config.ttl
    }

    /// Record a timeout against `node`.
    pub fn record_timeout(&mut self, node: NodeId) -> Verdict {
        if self.failed.contains(&node) {
            return Verdict::AlreadyFailed;
        }
        let count = self.counts.entry(node).or_insert(0);
        *count += 1;
        if *count >= self.config.timeout_limit {
            self.failed.insert(node);
            self.counts.remove(&node);
            Verdict::JustFailed
        } else {
            Verdict::Suspect { count: *count }
        }
    }

    /// Record a successful response from `node`: clears its consecutive
    /// count (false-positive damping). Succeeding after having been
    /// declared failed does *not* resurrect it — resurrection is an
    /// explicit membership decision ([`Self::clear_failed`]).
    pub fn record_success(&mut self, node: NodeId) {
        self.counts.remove(&node);
    }

    /// Whether `node` has been declared failed.
    pub fn is_failed(&self, node: NodeId) -> bool {
        self.failed.contains(&node)
    }

    /// All nodes declared failed, ascending.
    pub fn failed_nodes(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.failed.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Current consecutive-timeout count for `node` (0 if none or failed).
    pub fn suspect_count(&self, node: NodeId) -> u32 {
        self.counts.get(&node).copied().unwrap_or(0)
    }

    /// Administratively declare `node` failed (e.g. out-of-band notice).
    pub fn mark_failed(&mut self, node: NodeId) {
        self.failed.insert(node);
        self.counts.remove(&node);
    }

    /// Forget that `node` failed (elastic rejoin after repair).
    pub fn clear_failed(&mut self, node: NodeId) -> bool {
        self.failed.remove(&node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(limit: u32) -> FailureDetector {
        FailureDetector::new(DetectorConfig {
            ttl: Duration::from_millis(10),
            timeout_limit: limit,
        })
    }

    #[test]
    fn fails_exactly_at_limit() {
        let mut d = det(3);
        let n = NodeId(1);
        assert_eq!(d.record_timeout(n), Verdict::Suspect { count: 1 });
        assert_eq!(d.record_timeout(n), Verdict::Suspect { count: 2 });
        assert_eq!(d.record_timeout(n), Verdict::JustFailed);
        assert!(d.is_failed(n));
        assert_eq!(d.record_timeout(n), Verdict::AlreadyFailed);
    }

    #[test]
    fn success_resets_consecutive_count() {
        let mut d = det(3);
        let n = NodeId(2);
        d.record_timeout(n);
        d.record_timeout(n);
        d.record_success(n);
        assert_eq!(d.suspect_count(n), 0);
        // Needs the full limit again.
        assert_eq!(d.record_timeout(n), Verdict::Suspect { count: 1 });
        assert!(!d.is_failed(n));
    }

    #[test]
    fn limit_one_is_immediate() {
        let mut d = det(1);
        assert_eq!(d.record_timeout(NodeId(0)), Verdict::JustFailed);
    }

    #[test]
    fn nodes_tracked_independently() {
        let mut d = det(2);
        d.record_timeout(NodeId(0));
        d.record_timeout(NodeId(1));
        assert_eq!(d.record_timeout(NodeId(0)), Verdict::JustFailed);
        assert!(!d.is_failed(NodeId(1)));
        assert_eq!(d.failed_nodes(), vec![NodeId(0)]);
    }

    #[test]
    fn success_after_failure_does_not_resurrect() {
        let mut d = det(1);
        d.record_timeout(NodeId(3));
        d.record_success(NodeId(3));
        assert!(d.is_failed(NodeId(3)));
    }

    #[test]
    fn mark_and_clear() {
        let mut d = det(5);
        d.mark_failed(NodeId(7));
        assert!(d.is_failed(NodeId(7)));
        assert!(d.clear_failed(NodeId(7)));
        assert!(!d.is_failed(NodeId(7)));
        assert!(!d.clear_failed(NodeId(7)));
        // After clearing, failure detection restarts from zero.
        assert_eq!(d.record_timeout(NodeId(7)), Verdict::Suspect { count: 1 });
    }

    #[test]
    fn default_config_is_sane() {
        let c = DetectorConfig::default();
        assert!(c.timeout_limit >= 1);
        assert!(c.ttl > Duration::ZERO);
        let d = FailureDetector::new(c);
        assert_eq!(d.ttl(), c.ttl);
    }
}
