//! Counters for clients and cluster-wide aggregation.
//!
//! The evaluation leans on these: "one extra PFS access per lost file"
//! (RingRecache), "PFS access per epoch per lost file" (PfsRedirect) and
//! the hit/miss composition of every figure come straight from snapshots
//! of these counters.

use ftc_storage::NvmeStats;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free per-client counters (shared across threads via `Arc`).
#[derive(Debug, Default)]
pub struct ClientMetrics {
    /// Successful reads returned to the application.
    pub reads_ok: AtomicU64,
    /// Reads served from some node's NVMe (local or remote).
    pub nvme_hits: AtomicU64,
    /// Reads a server satisfied by fetching from the PFS (miss + recache
    /// path).
    pub pfs_fetches_via_server: AtomicU64,
    /// Reads the client satisfied by going to the PFS directly (the
    /// PFS-redirection policy, or the pre-declaration suspect window).
    pub pfs_direct_reads: AtomicU64,
    /// RPC timeouts observed.
    pub rpc_timeouts: AtomicU64,
    /// Requests retried after a timeout.
    pub retries: AtomicU64,
    /// Nodes this client has declared failed.
    pub nodes_declared_failed: AtomicU64,
    /// Bytes delivered to the application.
    pub bytes_read: AtomicU64,
    /// Replicas pushed to ring successors (replication extension).
    pub replicas_written: AtomicU64,
    /// Replica puts that failed (counted per failed attempt, including
    /// the retry — a silent replica loss is a durability lie).
    pub replica_write_failures: AtomicU64,
    /// Replicas parked as hints for an unreachable target, to be drained
    /// by the recovery engine when the node rejoins.
    pub replicas_hinted: AtomicU64,
    /// `Overloaded` replies observed (server shed the request). Balanced
    /// against the servers' shed counters by the chaos accounting
    /// invariant — and deliberately disjoint from `rpc_timeouts`.
    pub overloaded_observed: AtomicU64,
    /// Foreground reads diverted to the PFS because the owner shed them.
    pub shed_pfs_fallbacks: AtomicU64,
    /// Hedged reads actually launched (second RPC issued).
    pub hedges_launched: AtomicU64,
    /// Hedged reads where the hedge beat the primary.
    pub hedges_won: AtomicU64,
    /// Reads short-circuited by an open per-node circuit breaker.
    pub breaker_short_circuits: AtomicU64,
    /// Retries refused because the retry token budget ran dry.
    pub budget_denied: AtomicU64,
    /// Reads answered from another reader's in-flight result (the
    /// single-flight follower path): no RPC issued at all.
    pub coalesced_reads: AtomicU64,
    /// Reads that led a single-flight group (executed while duplicates
    /// waited). Equals `reads_ok + errors` when no duplicates exist.
    pub singleflight_leaders: AtomicU64,
    /// Follower waits discarded because the published result carried a
    /// stale ring epoch (or the leader vanished) — the read re-executed
    /// independently rather than serve old-regime bytes.
    pub coalesced_stale_retries: AtomicU64,
}

/// Plain-value snapshot of [`ClientMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientMetricsSnapshot {
    /// See [`ClientMetrics::reads_ok`].
    pub reads_ok: u64,
    /// See [`ClientMetrics::nvme_hits`].
    pub nvme_hits: u64,
    /// See [`ClientMetrics::pfs_fetches_via_server`].
    pub pfs_fetches_via_server: u64,
    /// See [`ClientMetrics::pfs_direct_reads`].
    pub pfs_direct_reads: u64,
    /// See [`ClientMetrics::rpc_timeouts`].
    pub rpc_timeouts: u64,
    /// See [`ClientMetrics::retries`].
    pub retries: u64,
    /// See [`ClientMetrics::nodes_declared_failed`].
    pub nodes_declared_failed: u64,
    /// See [`ClientMetrics::bytes_read`].
    pub bytes_read: u64,
    /// See [`ClientMetrics::replicas_written`].
    pub replicas_written: u64,
    /// See [`ClientMetrics::replica_write_failures`].
    pub replica_write_failures: u64,
    /// See [`ClientMetrics::replicas_hinted`].
    pub replicas_hinted: u64,
    /// See [`ClientMetrics::overloaded_observed`].
    pub overloaded_observed: u64,
    /// See [`ClientMetrics::shed_pfs_fallbacks`].
    pub shed_pfs_fallbacks: u64,
    /// See [`ClientMetrics::hedges_launched`].
    pub hedges_launched: u64,
    /// See [`ClientMetrics::hedges_won`].
    pub hedges_won: u64,
    /// See [`ClientMetrics::breaker_short_circuits`].
    pub breaker_short_circuits: u64,
    /// See [`ClientMetrics::budget_denied`].
    pub budget_denied: u64,
    /// See [`ClientMetrics::coalesced_reads`].
    #[serde(default)]
    pub coalesced_reads: u64,
    /// See [`ClientMetrics::singleflight_leaders`].
    #[serde(default)]
    pub singleflight_leaders: u64,
    /// See [`ClientMetrics::coalesced_stale_retries`].
    #[serde(default)]
    pub coalesced_stale_retries: u64,
}

impl ClientMetrics {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> ClientMetricsSnapshot {
        // ordering: Relaxed on every load — these are independent
        // monotone tallies with no cross-counter invariant (unlike
        // ftc-net's NetStats): reports tolerate a torn view, and each
        // counter is exact once its writer threads are joined.
        ClientMetricsSnapshot {
            reads_ok: self.reads_ok.load(Ordering::Relaxed),
            nvme_hits: self.nvme_hits.load(Ordering::Relaxed),
            pfs_fetches_via_server: self.pfs_fetches_via_server.load(Ordering::Relaxed),
            pfs_direct_reads: self.pfs_direct_reads.load(Ordering::Relaxed),
            // ordering: Relaxed — same independent-tally argument as above.
            rpc_timeouts: self.rpc_timeouts.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            nodes_declared_failed: self.nodes_declared_failed.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            replicas_written: self.replicas_written.load(Ordering::Relaxed),
            replica_write_failures: self.replica_write_failures.load(Ordering::Relaxed),
            replicas_hinted: self.replicas_hinted.load(Ordering::Relaxed),
            // ordering: Relaxed — same independent-tally argument as above.
            overloaded_observed: self.overloaded_observed.load(Ordering::Relaxed),
            shed_pfs_fallbacks: self.shed_pfs_fallbacks.load(Ordering::Relaxed),
            hedges_launched: self.hedges_launched.load(Ordering::Relaxed),
            hedges_won: self.hedges_won.load(Ordering::Relaxed),
            breaker_short_circuits: self.breaker_short_circuits.load(Ordering::Relaxed),
            budget_denied: self.budget_denied.load(Ordering::Relaxed),
            // ordering: Relaxed — same independent-tally argument as above.
            coalesced_reads: self.coalesced_reads.load(Ordering::Relaxed),
            singleflight_leaders: self.singleflight_leaders.load(Ordering::Relaxed),
            coalesced_stale_retries: self.coalesced_stale_retries.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn inc(c: &AtomicU64) {
        // ordering: Relaxed — pure statistic, publishes no data.
        c.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(c: &AtomicU64, v: u64) {
        // ordering: Relaxed — pure statistic, publishes no data.
        c.fetch_add(v, Ordering::Relaxed);
    }
}

impl ClientMetricsSnapshot {
    /// Element-wise sum (aggregation across ranks). Saturating: a
    /// long-running campaign or a fuzzed snapshot near `u64::MAX` must
    /// aggregate to a pinned ceiling, not panic in debug or wrap in
    /// release.
    pub fn merge(&self, other: &Self) -> Self {
        ClientMetricsSnapshot {
            reads_ok: self.reads_ok.saturating_add(other.reads_ok),
            nvme_hits: self.nvme_hits.saturating_add(other.nvme_hits),
            pfs_fetches_via_server: self
                .pfs_fetches_via_server
                .saturating_add(other.pfs_fetches_via_server),
            pfs_direct_reads: self.pfs_direct_reads.saturating_add(other.pfs_direct_reads),
            rpc_timeouts: self.rpc_timeouts.saturating_add(other.rpc_timeouts),
            retries: self.retries.saturating_add(other.retries),
            nodes_declared_failed: self
                .nodes_declared_failed
                .saturating_add(other.nodes_declared_failed),
            bytes_read: self.bytes_read.saturating_add(other.bytes_read),
            replicas_written: self.replicas_written.saturating_add(other.replicas_written),
            replica_write_failures: self
                .replica_write_failures
                .saturating_add(other.replica_write_failures),
            replicas_hinted: self.replicas_hinted.saturating_add(other.replicas_hinted),
            overloaded_observed: self
                .overloaded_observed
                .saturating_add(other.overloaded_observed),
            shed_pfs_fallbacks: self
                .shed_pfs_fallbacks
                .saturating_add(other.shed_pfs_fallbacks),
            hedges_launched: self.hedges_launched.saturating_add(other.hedges_launched),
            hedges_won: self.hedges_won.saturating_add(other.hedges_won),
            breaker_short_circuits: self
                .breaker_short_circuits
                .saturating_add(other.breaker_short_circuits),
            budget_denied: self.budget_denied.saturating_add(other.budget_denied),
            coalesced_reads: self.coalesced_reads.saturating_add(other.coalesced_reads),
            singleflight_leaders: self
                .singleflight_leaders
                .saturating_add(other.singleflight_leaders),
            coalesced_stale_retries: self
                .coalesced_stale_retries
                .saturating_add(other.coalesced_stale_retries),
        }
    }
}

impl ftc_obs::Export for ClientMetricsSnapshot {
    fn export_into(&self, out: &mut Vec<ftc_obs::Sample>) {
        out.push(ftc_obs::Sample::counter(
            "ftc_client_reads_ok_total",
            self.reads_ok,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_nvme_hits_total",
            self.nvme_hits,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_pfs_fetches_via_server_total",
            self.pfs_fetches_via_server,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_pfs_direct_reads_total",
            self.pfs_direct_reads,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_rpc_timeouts_total",
            self.rpc_timeouts,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_retries_total",
            self.retries,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_nodes_declared_failed_total",
            self.nodes_declared_failed,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_bytes_read_total",
            self.bytes_read,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_replicas_written_total",
            self.replicas_written,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_replica_write_failures_total",
            self.replica_write_failures,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_replicas_hinted_total",
            self.replicas_hinted,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_overloaded_total",
            self.overloaded_observed,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_shed_pfs_fallbacks_total",
            self.shed_pfs_fallbacks,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_hedges_launched_total",
            self.hedges_launched,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_hedges_won_total",
            self.hedges_won,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_breaker_short_circuits_total",
            self.breaker_short_circuits,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_budget_denied_total",
            self.budget_denied,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_coalesced_reads_total",
            self.coalesced_reads,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_singleflight_leaders_total",
            self.singleflight_leaders,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_client_coalesced_stale_retries_total",
            self.coalesced_stale_retries,
        ));
    }
}

/// Whole-cluster view assembled by [`crate::cluster::Cluster::metrics`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterMetrics {
    /// Sum over all clients.
    pub clients: ClientMetricsSnapshot,
    /// Per-node NVMe cache stats, indexed by node id.
    pub nvme_per_node: Vec<NvmeStats>,
    /// Total PFS reads (all sources: server misses + client redirects).
    pub pfs_total_reads: u64,
    /// Files recached by data movers after fetches.
    pub files_recached: u64,
    /// Bytes moved by data movers.
    pub recached_bytes: u64,
}

impl ClusterMetrics {
    /// Sum of NVMe hits across nodes.
    pub fn total_nvme_hits(&self) -> u64 {
        self.nvme_per_node.iter().map(|s| s.hits).sum()
    }

    /// Sum of NVMe resident bytes across nodes.
    pub fn total_resident_bytes(&self) -> u64 {
        self.nvme_per_node.iter().map(|s| s.resident_bytes).sum()
    }

    /// Per-node resident object counts — the observable for load-balance
    /// assertions.
    pub fn resident_objects_per_node(&self) -> Vec<u64> {
        self.nvme_per_node
            .iter()
            .map(|s| s.resident_objects)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_merge() {
        let m = ClientMetrics::default();
        ClientMetrics::inc(&m.reads_ok);
        ClientMetrics::add(&m.bytes_read, 100);
        let a = m.snapshot();
        let b = ClientMetricsSnapshot {
            reads_ok: 2,
            bytes_read: 50,
            ..Default::default()
        };
        let s = a.merge(&b);
        assert_eq!(s.reads_ok, 3);
        assert_eq!(s.bytes_read, 150);
        assert_eq!(s.rpc_timeouts, 0);
    }

    #[test]
    fn merge_saturates_instead_of_overflowing() {
        let a = ClientMetricsSnapshot {
            bytes_read: u64::MAX - 10,
            reads_ok: u64::MAX,
            ..Default::default()
        };
        let b = ClientMetricsSnapshot {
            bytes_read: 100,
            reads_ok: 1,
            ..Default::default()
        };
        let s = a.merge(&b);
        assert_eq!(s.bytes_read, u64::MAX);
        assert_eq!(s.reads_ok, u64::MAX);
    }

    #[test]
    fn snapshot_exports_every_counter() {
        use ftc_obs::{Export, Value};
        let snap = ClientMetricsSnapshot {
            reads_ok: 3,
            bytes_read: 4096,
            ..Default::default()
        };
        let samples = snap.export();
        // One sample per public field — nothing reachable only privately.
        assert_eq!(samples.len(), 20);
        let find = |n: &str| {
            samples
                .iter()
                .find(|s| s.name == n)
                .unwrap_or_else(|| panic!("missing sample {n}"))
        };
        assert_eq!(find("ftc_client_reads_ok_total").value, Value::Counter(3));
        assert_eq!(
            find("ftc_client_bytes_read_total").value,
            Value::Counter(4096)
        );
    }

    #[test]
    fn cluster_rollups() {
        let cm = ClusterMetrics {
            nvme_per_node: vec![
                NvmeStats {
                    hits: 5,
                    resident_bytes: 10,
                    resident_objects: 2,
                    ..Default::default()
                },
                NvmeStats {
                    hits: 7,
                    resident_bytes: 30,
                    resident_objects: 4,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(cm.total_nvme_hits(), 12);
        assert_eq!(cm.total_resident_bytes(), 40);
        assert_eq!(cm.resident_objects_per_node(), vec![2, 4]);
    }
}
