//! # ftc-core — FT-Cache: the fault-tolerant HVAC cache
//!
//! The primary contribution of *"Fault-Tolerant Deep Learning Cache with
//! Hash Ring for Load Balancing in HPC Systems"* (SC'24): a distributed
//! node-local NVMe cache for DL training data that survives compute-node
//! failures.
//!
//! Architecture (Fig. 3 of the paper):
//!
//! * [`server::HvacServer`] — per-node daemon serving `Read` RPCs from its
//!   NVMe cache, falling back to the PFS and recaching via a data mover.
//! * [`client::HvacClient`] — the training process's shim: placement
//!   lookup → RPC → timeout-based failure detection
//!   ([`detector::FailureDetector`]) → one of three policies
//!   ([`policy::FtPolicy`]): NoFT abort, PFS redirection (§IV-A), or
//!   hash-ring elastic recaching (§IV-B).
//! * [`cluster::Cluster`] — a whole cluster in one process (threads +
//!   fault-injecting fabric), used by tests, examples and benches.
//!
//! ```
//! use ftc_core::{Cluster, ClusterConfig, FtPolicy};
//! use ftc_hashring::NodeId;
//!
//! let cluster = Cluster::start(ClusterConfig::small(4, FtPolicy::RingRecache)).unwrap();
//! let paths = cluster.stage_dataset("train", 16, 64);
//! let client = cluster.client(0);
//! for p in &paths { client.read(p).unwrap(); }    // epoch 1: cache fills
//! cluster.kill(NodeId(2));                        // a node dies…
//! for p in &paths { client.read(p).unwrap(); }    // …training continues
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod cluster;
pub mod controller;
pub mod detector;
pub mod error;
pub mod metrics;
pub mod overload;
pub mod policy;
pub mod proto;
pub mod recovery;
pub mod server;
pub mod singleflight;

pub use client::{HvacClient, ReadError, ReadOutcome, ReadVia};
pub use cluster::{Cluster, ClusterConfig};
pub use controller::{
    ControllerConfig, LivePolicy, PolicyController, PolicyDecision, PolicySignals,
};
pub use detector::{DetectorConfig, FailureDetector, Verdict};
pub use error::CoreError;
pub use metrics::{ClientMetrics, ClientMetricsSnapshot, ClusterMetrics};
pub use overload::{
    AdmissionConfig, AdmissionQueue, BreakerConfig, BreakerState, BudgetConfig, CircuitBreaker,
    HedgeConfig, OverloadConfig, Priority, RetryBudget, ShedReason,
};
pub use policy::{FtConfig, FtPolicy, PlacementKind, RetryPolicy};
pub use proto::{CacheRequest, CacheResponse, ServeSource};
pub use recovery::{RecoveryConfig, RecoveryEngine, RecoveryStatsSnapshot};
pub use server::{CacheNet, HvacServer, ServerHandle};
pub use singleflight::{SingleFlight, SingleFlightStats};
