//! Property tests for the interconnect substrate's cost model and the
//! transport's timeout discipline.

use ftc_hashring::NodeId;
use ftc_net::{LatencyModel, Network, RpcError};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Link cost is monotone in message size and bounded by the jitter
    /// envelope.
    #[test]
    fn latency_cost_monotone_and_bounded(
        base in 0.0f64..0.01,
        bw in 1e6f64..1e12,
        jitter in 0.0f64..0.5,
        a in 0usize..1_000_000,
        b in 0usize..1_000_000,
        u in 0.0f64..1.0,
    ) {
        let m = LatencyModel { base_s: base, bandwidth_bps: bw, jitter_frac: jitter };
        let (small, large) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(m.cost_s(small) <= m.cost_s(large));
        let c = m.cost_s(a);
        let j = m.cost_with_jitter_s(a, u);
        prop_assert!(j >= c * (1.0 - jitter) - 1e-12);
        prop_assert!(j <= c * (1.0 + jitter) + 1e-12);
        prop_assert!(m.delay(a, u) >= Duration::ZERO);
    }

    /// Calls to unregistered nodes always fail fast with UnknownNode,
    /// regardless of id.
    #[test]
    fn unknown_nodes_fail_fast(node in 0u32..10_000) {
        let net: Network<String, String> = Network::instant(0);
        let ep = net.endpoint(NodeId(99_999));
        let err = ep
            .call(NodeId(node), "x".into(), Duration::from_millis(5))
            .unwrap_err();
        prop_assert_eq!(err, RpcError::UnknownNode(NodeId(node)));
    }

    /// Kill/revive is idempotent and `is_down` always reflects the last
    /// operation.
    #[test]
    fn kill_revive_state_machine(ops in prop::collection::vec(any::<bool>(), 1..40)) {
        let net: Network<String, String> = Network::instant(1);
        let _mbox = net.register(NodeId(0));
        for kill in ops {
            if kill {
                net.kill(NodeId(0));
            } else {
                net.revive(NodeId(0));
            }
            prop_assert_eq!(net.is_down(NodeId(0)), kill);
        }
    }
}
