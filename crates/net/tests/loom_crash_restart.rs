//! Loom models of the two transport concurrency protocols.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` (the CI `loom` job):
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test -p ftc-net --test loom_crash_restart --release
//! ```
//!
//! Each test is a *model* of a protocol in `ftc-net`, written against
//! loom's `sync`/`thread` API so the checker can drive interleavings:
//!
//! 1. `stats_snapshot_never_sees_completion_without_initiation` — the
//!    Release/Acquire publication protocol from `src/stats.rs`: writers
//!    bump `rpcs_sent` (Relaxed) before `rpcs_ok` (Release); the
//!    snapshot loads completions Acquire-first, so `ok <= sent` must
//!    hold in every interleaving.
//! 2. `crash_restart_loses_each_request_at_most_once` — the
//!    kill → drain → revive sequence behind `Network::kill`/`revive`:
//!    once a request is counted as dropped-by-kill it must never also be
//!    served, and every enqueued request is either served or drained —
//!    no duplication, no limbo.

#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use loom::thread;

#[test]
fn stats_snapshot_never_sees_completion_without_initiation() {
    loom::model(|| {
        let sent = Arc::new(AtomicU64::new(0));
        let ok = Arc::new(AtomicU64::new(0));

        let writers: Vec<_> = (0..2)
            .map(|_| {
                let sent = Arc::clone(&sent);
                let ok = Arc::clone(&ok);
                thread::spawn(move || {
                    // Mirrors the RPC fast path: initiation first
                    // (Relaxed), completion second (Release).
                    // ordering: Relaxed — initiation is published by the
                    // later Release below, never read on its own.
                    sent.fetch_add(1, Ordering::Relaxed);
                    // ordering: Release — publishes the preceding
                    // initiation to any Acquire load that sees this.
                    ok.fetch_add(1, Ordering::Release);
                })
            })
            .collect();

        // Snapshot mid-flight: completions Acquire-first, then
        // initiations — the order `NetStats::snapshot` uses.
        // ordering: Acquire — pairs with the Release increments above.
        let seen_ok = ok.load(Ordering::Acquire);
        // ordering: Relaxed — ordered by the Acquire load above.
        let seen_sent = sent.load(Ordering::Relaxed);
        assert!(
            seen_ok <= seen_sent,
            "snapshot saw {seen_ok} completions but only {seen_sent} initiations"
        );

        for w in writers {
            w.join().expect("writer thread");
        }
    });
}

#[test]
fn crash_restart_loses_each_request_at_most_once() {
    loom::model(|| {
        // Mailbox of request ids; `down` is the kill flag the delivery
        // path consults before enqueueing.
        let mailbox = Arc::new(Mutex::new(Vec::<usize>::new()));
        let down = Arc::new(AtomicBool::new(false));
        // Per-request outcome: 0 = pending, 1 = served, 2 = dropped.
        let outcome: Arc<Vec<AtomicU64>> = Arc::new((0..4).map(|_| AtomicU64::new(0)).collect());

        // Client: deliver 4 requests, dropping any that observe `down`
        // (the transport's dropped_killed path).
        let client = {
            let mailbox = Arc::clone(&mailbox);
            let down = Arc::clone(&down);
            let outcome = Arc::clone(&outcome);
            thread::spawn(move || {
                for id in 0..4 {
                    // ordering: Acquire — observes the kill flag set by
                    // the chaos thread's Release store.
                    if down.load(Ordering::Acquire) {
                        // ordering: Relaxed — outcome slots are read only
                        // after every thread has joined.
                        outcome[id].store(2, Ordering::Relaxed);
                    } else {
                        mailbox.lock().expect("unpoisoned").push(id);
                    }
                }
            })
        };

        // Chaos: crash the server (set down, drain the mailbox — a
        // respawned server starts with a cold mailbox) then revive it.
        let chaos = {
            let mailbox = Arc::clone(&mailbox);
            let down = Arc::clone(&down);
            let outcome = Arc::clone(&outcome);
            thread::spawn(move || {
                // ordering: Release — any delivery that observes the
                // flag also sees everything before the crash.
                down.store(true, Ordering::Release);
                for id in mailbox.lock().expect("unpoisoned").drain(..) {
                    let prev = outcome[id]
                        // ordering: Relaxed — see the client thread.
                        .compare_exchange(0, 2, Ordering::Relaxed, Ordering::Relaxed);
                    assert!(prev.is_ok(), "request {id} dropped twice or after service");
                }
                // ordering: Release — revive publishes the drained state.
                down.store(false, Ordering::Release);
            })
        };

        // Server: serve whatever survives in the mailbox. Serving after
        // the drain is legal only for requests enqueued *after* revive —
        // drained ids must never reappear (pop and drain share the lock).
        let server = {
            let mailbox = Arc::clone(&mailbox);
            let outcome = Arc::clone(&outcome);
            thread::spawn(move || loop {
                let Some(id) = mailbox.lock().expect("unpoisoned").pop() else {
                    break;
                };
                let prev = outcome[id]
                    // ordering: Relaxed — see the client thread.
                    .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
                assert!(prev.is_ok(), "request {id} served after being dropped");
            })
        };

        client.join().expect("client thread");
        chaos.join().expect("chaos thread");
        server.join().expect("server thread");

        // Drain any stragglers the server missed (it may exit while the
        // client is still enqueueing), then check conservation: every
        // request has exactly one fate.
        for id in mailbox.lock().expect("unpoisoned").drain(..) {
            outcome[id]
                // ordering: Relaxed — single-threaded from here on.
                .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                .expect("straggler already resolved");
        }
        for (id, o) in outcome.iter().enumerate() {
            // ordering: Relaxed — all threads joined; values are final.
            let v = o.load(Ordering::Relaxed);
            assert!(v == 1 || v == 2, "request {id} vanished (outcome {v})");
        }
    });
}
