//! Link-cost model shared by the threaded transport and the discrete-event
//! simulator.
//!
//! A message of `b` bytes takes `base + b / bandwidth` seconds one way,
//! optionally with multiplicative jitter. The threaded transport *sleeps*
//! this long; the DES *advances the clock* by it — both modes are thus
//! calibrated by the same numbers.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// One-way link cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Fixed per-message latency in seconds (propagation + RPC overhead).
    pub base_s: f64,
    /// Link bandwidth in bytes/second; `f64::INFINITY` disables the
    /// serialization term.
    pub bandwidth_bps: f64,
    /// Jitter amplitude as a fraction of the deterministic cost: the
    /// sampled cost is uniform in `[cost*(1-j), cost*(1+j)]`.
    pub jitter_frac: f64,
}

impl LatencyModel {
    /// Zero-cost link (unit tests that only exercise protocol logic).
    pub fn instant() -> Self {
        LatencyModel {
            base_s: 0.0,
            bandwidth_bps: f64::INFINITY,
            jitter_frac: 0.0,
        }
    }

    /// A model with fixed latency and no bandwidth term.
    pub fn fixed(base: Duration) -> Self {
        LatencyModel {
            base_s: base.as_secs_f64(),
            bandwidth_bps: f64::INFINITY,
            jitter_frac: 0.0,
        }
    }

    /// Frontier-like Slingshot link: ~10 µs latency, 25 GB/s per-node
    /// injection bandwidth (HPE Slingshot-11 NIC, 200 Gbit/s).
    pub fn slingshot() -> Self {
        LatencyModel {
            base_s: 10e-6,
            bandwidth_bps: 25e9,
            jitter_frac: 0.05,
        }
    }

    /// Deterministic one-way cost in seconds for a message of `bytes`.
    #[inline]
    pub fn cost_s(&self, bytes: usize) -> f64 {
        if self.bandwidth_bps.is_finite() && self.bandwidth_bps > 0.0 {
            self.base_s + bytes as f64 / self.bandwidth_bps
        } else {
            self.base_s
        }
    }

    /// Cost with jitter applied; `u` must be uniform in `[0, 1)`.
    #[inline]
    pub fn cost_with_jitter_s(&self, bytes: usize, u: f64) -> f64 {
        let c = self.cost_s(bytes);
        if self.jitter_frac == 0.0 {
            c
        } else {
            c * (1.0 + self.jitter_frac * (2.0 * u - 1.0))
        }
    }

    /// Cost as a `Duration` (jittered), for the threaded transport.
    #[inline]
    pub fn delay(&self, bytes: usize, u: f64) -> Duration {
        Duration::from_secs_f64(self.cost_with_jitter_s(bytes, u).max(0.0))
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::instant()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_costs_nothing() {
        let m = LatencyModel::instant();
        assert_eq!(m.cost_s(0), 0.0);
        assert_eq!(m.cost_s(1 << 30), 0.0);
        assert_eq!(m.delay(100, 0.9), Duration::ZERO);
    }

    #[test]
    fn bandwidth_term() {
        let m = LatencyModel {
            base_s: 0.001,
            bandwidth_bps: 1e6,
            jitter_frac: 0.0,
        };
        // 1 MB at 1 MB/s = 1 s + 1 ms base.
        assert!((m.cost_s(1_000_000) - 1.001).abs() < 1e-9);
    }

    #[test]
    fn jitter_bounds() {
        let m = LatencyModel {
            base_s: 1.0,
            bandwidth_bps: f64::INFINITY,
            jitter_frac: 0.1,
        };
        assert!((m.cost_with_jitter_s(0, 0.0) - 0.9).abs() < 1e-9);
        assert!((m.cost_with_jitter_s(0, 0.5) - 1.0).abs() < 1e-9);
        let hi = m.cost_with_jitter_s(0, 0.999_999);
        assert!(hi < 1.1 + 1e-6 && hi > 1.09);
    }

    #[test]
    fn slingshot_preset_is_sane() {
        let m = LatencyModel::slingshot();
        // A 2.6 MB CosmoFlow sample crosses one link in ~114 µs.
        let c = m.cost_s(2_600_000);
        assert!(c > 100e-6 && c < 130e-6, "cost={c}");
    }

    #[test]
    fn fixed_preset() {
        let m = LatencyModel::fixed(Duration::from_millis(5));
        assert!((m.cost_s(usize::MAX) - 0.005).abs() < 1e-9);
    }
}
