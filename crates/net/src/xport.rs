//! Backend-agnostic transport traits — the seam between the protocol
//! stack and the fabric that carries it.
//!
//! Everything above the network (client retry loop, server serve loop,
//! detector, recovery engine) talks to four object-safe traits instead of
//! the concrete in-process types:
//!
//! * [`Caller`] — client side: issue an RPC with a deadline
//!   (extracted from [`crate::Endpoint`]).
//! * [`Inbound`] — one delivered request carrying its reply path
//!   (extracted from [`crate::Incoming`]).
//! * [`Listener`] — server side: block for the next request
//!   (extracted from [`crate::Mailbox`]).
//! * [`Transport`] — the factory that mints both sides
//!   (extracted from [`crate::Network`]).
//!
//! The in-process simulated fabric implements all four below, so the
//! chaos / virtual-time / linearizability stacks run unchanged. The TCP
//! backend in `ftc-wire` implements the same four over real sockets; the
//! sim-only hooks ([`Caller::tracer`], [`Inbound::trace_state`], …)
//! default to no-ops there, because vector-clock tracing and history
//! recording are single-process affordances.
//!
//! All methods take `&self`/`&mut self` and no generics, so every trait
//! is object-safe: the protocol crates hold `Box<dyn Caller<..>>` and
//! never learn which fabric is underneath.

use crate::error::RpcError;
use crate::history::HistoryRecorder;
use crate::trace::{TraceEventKind, Tracer};
use crate::transport::{Endpoint, Incoming, Mailbox, Network, Payload};
use ftc_hashring::NodeId;
use ftc_time::ClockHandle;
use std::io;
use std::sync::Arc;
use std::time::Duration;

/// Client-side RPC issuer: the abstract face of [`crate::Endpoint`].
pub trait Caller<Req, Resp>: Send + Sync {
    /// The node this caller sends as.
    fn node(&self) -> NodeId;

    /// The clock the owning fabric runs on — upper layers reuse it for
    /// their own deadlines so RPC time and protocol time agree.
    fn clock(&self) -> ClockHandle;

    /// Issue an RPC with a deadline. Errors follow the
    /// [`RpcError`] taxonomy: a silent or dead peer degrades to
    /// [`RpcError::Timeout`]; a torn connection to
    /// [`RpcError::Disconnected`]; both feed the failure detector via
    /// [`RpcError::indicates_failure`].
    fn call(&self, to: NodeId, req: Req, timeout: Duration) -> Result<Resp, RpcError>;

    /// The fabric's vector-clock tracer, when the backend records
    /// causality (the in-process fabric with tracing enabled). Real
    /// network backends return `None`.
    fn tracer(&self) -> Option<Arc<Tracer>> {
        None
    }

    /// The fabric's linearizability history recorder, when enabled.
    /// Real network backends return `None`.
    fn history(&self) -> Option<Arc<HistoryRecorder>> {
        None
    }
}

/// One delivered request plus its reply path: the abstract face of
/// [`crate::Incoming`]. Consumed by value (`Box<Self>`) on reply, so a
/// request cannot be answered twice.
pub trait Inbound<Req, Resp>: Send {
    /// Sender node.
    fn from(&self) -> NodeId;

    /// The node this request was addressed to (the one now serving it).
    fn served_by(&self) -> NodeId;

    /// The request payload.
    fn req(&self) -> &Req;

    /// Merge the request's causality stamp into the serving node's
    /// clock. No-op on backends without tracing.
    fn absorb(&mut self) {}

    /// Record a server-side state event causally after this request's
    /// send. No-op on backends without tracing.
    fn trace_state(&mut self, kind: TraceEventKind) {
        let _ = kind;
    }

    /// The fabric's history recorder, when enabled. `None` on real
    /// network backends.
    fn history(&self) -> Option<Arc<HistoryRecorder>> {
        None
    }

    /// Reply immediately (zero modeled serialization cost).
    fn reply(self: Box<Self>, resp: Resp);

    /// Reply, charging the response's serialization time to the server
    /// thread. Backends with a real NIC get this for free, so the
    /// default just replies.
    fn reply_sized(self: Box<Self>, resp: Resp) {
        self.reply(resp)
    }

    /// Drop the request without answering (hung-server emulation).
    fn ignore(self: Box<Self>) {}
}

/// Server-side receive handle for one node: the abstract face of
/// [`crate::Mailbox`].
pub trait Listener<Req, Resp>: Send {
    /// The owning node.
    fn node(&self) -> NodeId;

    /// Block until a request arrives or the deadline lapses. `None` on
    /// timeout or fabric shutdown — callers poll in a loop and check
    /// their stop flag between calls.
    fn accept(&self, timeout: Duration) -> Option<Box<dyn Inbound<Req, Resp>>>;

    /// Number of queued requests, where the backend can know it cheaply
    /// (load introspection; 0 otherwise).
    fn backlog(&self) -> usize {
        0
    }
}

/// A message fabric: mints [`Listener`]s (server side) and [`Caller`]s
/// (client side) for nodes addressed by [`NodeId`]. The abstract face of
/// [`crate::Network`].
pub trait Transport<Req, Resp>: Send + Sync {
    /// The clock this fabric runs on.
    fn clock(&self) -> ClockHandle;

    /// Bind a node's server side. Re-registering an id replaces the
    /// previous listener (elastic rejoin). Real backends can fail here
    /// (address in use); the in-process fabric cannot.
    fn register(&self, node: NodeId) -> io::Result<Box<dyn Listener<Req, Resp>>>;

    /// Client-side handle bound to a source node id.
    fn caller(&self, me: NodeId) -> Box<dyn Caller<Req, Resp>>;
}

// ---------------------------------------------------------------------------
// In-process backend: the simulated fabric is Transport #1.
// ---------------------------------------------------------------------------

impl<Req: Payload, Resp: Payload> Caller<Req, Resp> for Endpoint<Req, Resp> {
    fn node(&self) -> NodeId {
        Endpoint::node(self)
    }

    fn clock(&self) -> ClockHandle {
        Endpoint::clock(self)
    }

    fn call(&self, to: NodeId, req: Req, timeout: Duration) -> Result<Resp, RpcError> {
        Endpoint::call(self, to, req, timeout)
    }

    fn tracer(&self) -> Option<Arc<Tracer>> {
        Endpoint::tracer(self)
    }

    fn history(&self) -> Option<Arc<HistoryRecorder>> {
        Endpoint::history(self)
    }
}

impl<Req: Payload, Resp: Payload> Inbound<Req, Resp> for Incoming<Req, Resp> {
    fn from(&self) -> NodeId {
        self.from
    }

    fn served_by(&self) -> NodeId {
        Incoming::served_by(self)
    }

    fn req(&self) -> &Req {
        &self.req
    }

    fn absorb(&mut self) {
        Incoming::absorb(self)
    }

    fn trace_state(&mut self, kind: TraceEventKind) {
        Incoming::trace_state(self, kind)
    }

    fn history(&self) -> Option<Arc<HistoryRecorder>> {
        Incoming::history(self)
    }

    fn reply(self: Box<Self>, resp: Resp) {
        Incoming::reply(*self, resp)
    }

    fn reply_sized(self: Box<Self>, resp: Resp) {
        Incoming::reply_sized(*self, resp)
    }

    fn ignore(self: Box<Self>) {
        Incoming::ignore(*self)
    }
}

impl<Req: Payload, Resp: Payload> Listener<Req, Resp> for Mailbox<Req, Resp> {
    fn node(&self) -> NodeId {
        Mailbox::node(self)
    }

    fn accept(&self, timeout: Duration) -> Option<Box<dyn Inbound<Req, Resp>>> {
        self.recv_timeout(timeout)
            .map(|inc| Box::new(inc) as Box<dyn Inbound<Req, Resp>>)
    }

    fn backlog(&self) -> usize {
        Mailbox::backlog(self)
    }
}

impl<Req: Payload, Resp: Payload> Transport<Req, Resp> for Network<Req, Resp> {
    fn clock(&self) -> ClockHandle {
        Network::clock(self)
    }

    fn register(&self, node: NodeId) -> io::Result<Box<dyn Listener<Req, Resp>>> {
        Ok(Box::new(Network::register(self, node)))
    }

    fn caller(&self, me: NodeId) -> Box<dyn Caller<Req, Resp>> {
        Box::new(self.endpoint(me))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencyModel;

    const TTL: Duration = Duration::from_millis(100);

    /// The whole RPC round trip, driven purely through trait objects —
    /// proves the in-process fabric is a complete [`Transport`] backend.
    #[test]
    fn in_process_fabric_behind_trait_objects() {
        let net: Network<String, String> = Network::instant(7);
        let fabric: &dyn Transport<String, String> = &net;
        let listener = fabric.register(NodeId(0)).expect("in-process bind");
        assert_eq!(listener.node(), NodeId(0));
        let h = std::thread::spawn(move || {
            let mut served = 0;
            while served < 2 {
                if let Some(mut inc) = listener.accept(Duration::from_millis(5)) {
                    inc.absorb();
                    let reply = format!("{}:{}", inc.from(), inc.req());
                    inc.reply(reply);
                    served += 1;
                }
            }
        });
        let caller = fabric.caller(NodeId(9));
        assert_eq!(caller.node(), NodeId(9));
        assert_eq!(caller.call(NodeId(0), "a".into(), TTL).unwrap(), "n9:a");
        assert_eq!(caller.call(NodeId(0), "b".into(), TTL).unwrap(), "n9:b");
        h.join().unwrap();
    }

    #[test]
    fn trait_timeout_matches_endpoint_taxonomy() {
        let net: Network<String, String> = Network::new(LatencyModel::instant(), 1);
        let _listener = Transport::<String, String>::register(&net, NodeId(0)).unwrap();
        net.kill(NodeId(0));
        let caller = net.caller(NodeId(1));
        let err = caller.call(NodeId(0), "x".into(), TTL).unwrap_err();
        assert_eq!(err, RpcError::Timeout { to: NodeId(0) });
        assert!(err.indicates_failure());
    }

    #[test]
    fn tracer_and_history_surface_through_caller() {
        let net: Network<String, String> = Network::instant(2);
        assert!(Transport::<String, String>::caller(&net, NodeId(1))
            .tracer()
            .is_none());
        net.enable_tracing();
        net.enable_history();
        let caller = net.caller(NodeId(1));
        assert!(caller.tracer().is_some());
        assert!(caller.history().is_some());
    }
}
