//! Lock-free network counters.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by the transport; cheap enough to update on every
/// RPC (relaxed atomics — they are statistics, not synchronization).
#[derive(Debug, Default)]
pub struct NetStats {
    /// RPCs initiated by any endpoint.
    pub rpcs_sent: AtomicU64,
    /// RPCs that received a response before their deadline.
    pub rpcs_ok: AtomicU64,
    /// RPCs that expired (including those to killed nodes).
    pub timeouts: AtomicU64,
    /// Messages discarded by fault injection, all causes. Always equals
    /// `dropped_killed + dropped_link + dropped_partition`.
    pub dropped: AtomicU64,
    /// Messages discarded because the destination node was killed.
    pub dropped_killed: AtomicU64,
    /// Messages lost to link faults: i.i.d. drop probability or a flaky
    /// link in its down phase.
    pub dropped_link: AtomicU64,
    /// Messages blocked by a (possibly one-way) partition rule.
    pub dropped_partition: AtomicU64,
    /// Payload bytes carried by delivered requests and replies.
    pub bytes_sent: AtomicU64,
}

/// Plain-value copy of [`NetStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStatsSnapshot {
    /// See [`NetStats::rpcs_sent`].
    pub rpcs_sent: u64,
    /// See [`NetStats::rpcs_ok`].
    pub rpcs_ok: u64,
    /// See [`NetStats::timeouts`].
    pub timeouts: u64,
    /// See [`NetStats::dropped`].
    pub dropped: u64,
    /// See [`NetStats::dropped_killed`].
    pub dropped_killed: u64,
    /// See [`NetStats::dropped_link`].
    pub dropped_link: u64,
    /// See [`NetStats::dropped_partition`].
    pub dropped_partition: u64,
    /// See [`NetStats::bytes_sent`].
    pub bytes_sent: u64,
}

impl NetStats {
    /// Take a consistent-enough snapshot (each counter individually
    /// atomic; cross-counter skew is possible and acceptable).
    pub fn snapshot(&self) -> NetStatsSnapshot {
        NetStatsSnapshot {
            rpcs_sent: self.rpcs_sent.load(Ordering::Relaxed),
            rpcs_ok: self.rpcs_ok.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            dropped_killed: self.dropped_killed.load(Ordering::Relaxed),
            dropped_link: self.dropped_link.load(Ordering::Relaxed),
            dropped_partition: self.dropped_partition.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        counter.fetch_add(v, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_counters() {
        let s = NetStats::default();
        NetStats::inc(&s.rpcs_sent);
        NetStats::inc(&s.rpcs_sent);
        NetStats::add(&s.bytes_sent, 1024);
        let snap = s.snapshot();
        assert_eq!(snap.rpcs_sent, 2);
        assert_eq!(snap.bytes_sent, 1024);
        assert_eq!(snap.timeouts, 0);
    }
}
