//! Lock-free network counters.
//!
//! ## Snapshot consistency
//!
//! Counters are incremented on the RPC fast path, so they must stay cheap;
//! but a snapshot taken mid-campaign feeds invariant checks (the chaos
//! harness asserts `dropped == dropped_killed + dropped_link +
//! dropped_partition`, and reports compute `rpcs_ok / rpcs_sent`). With
//! all-`Relaxed` counters a reader could observe a *completion* (an
//! `rpcs_ok` or a per-cause drop) without the *initiation* that
//! program-order preceded it (`rpcs_sent`, `dropped`), yielding nonsense
//! like `rpcs_ok > rpcs_sent` or a cause-sum exceeding `dropped`.
//!
//! The fix is one-directional publication: completion counters are
//! incremented with `Release`, and [`NetStats::snapshot`] loads every
//! completion with `Acquire` *before* loading the initiations. `Release`
//! read-modify-writes on one counter form a release sequence, so an
//! `Acquire` load that observes a completion value synchronizes with all
//! the increments it sums — making each writer's earlier
//! initiation-increment visible to the snapshot's later loads. Hence a
//! snapshot always satisfies:
//!
//! * `rpcs_ok + timeouts ≤ rpcs_sent`
//! * `dropped ≤ rpcs_sent` and `dropped_killed + dropped_link +
//!   dropped_partition ≤ dropped`
//!
//! Residual skew is still allowed in the *safe* direction (an initiation
//! with its completion not yet visible — an RPC that looks in-flight),
//! which consumers tolerate by construction.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters maintained by the transport; cheap enough to update on every
/// RPC. See the module docs for the publication protocol that keeps
/// snapshots free of completion-before-initiation anomalies.
#[derive(Debug, Default)]
pub struct NetStats {
    /// RPCs initiated by any endpoint.
    pub rpcs_sent: AtomicU64,
    /// RPCs that received a response before their deadline.
    pub rpcs_ok: AtomicU64,
    /// RPCs that expired (including those to killed nodes).
    pub timeouts: AtomicU64,
    /// Messages discarded by fault injection, all causes. Always equals
    /// `dropped_killed + dropped_link + dropped_partition`.
    pub dropped: AtomicU64,
    /// Messages discarded because the destination node was killed.
    pub dropped_killed: AtomicU64,
    /// Messages lost to link faults: i.i.d. drop probability or a flaky
    /// link in its down phase.
    pub dropped_link: AtomicU64,
    /// Messages blocked by a (possibly one-way) partition rule.
    pub dropped_partition: AtomicU64,
    /// Payload bytes carried by delivered requests and replies.
    pub bytes_sent: AtomicU64,
}

/// Plain-value copy of [`NetStats`] at one instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStatsSnapshot {
    /// See [`NetStats::rpcs_sent`].
    pub rpcs_sent: u64,
    /// See [`NetStats::rpcs_ok`].
    pub rpcs_ok: u64,
    /// See [`NetStats::timeouts`].
    pub timeouts: u64,
    /// See [`NetStats::dropped`].
    pub dropped: u64,
    /// See [`NetStats::dropped_killed`].
    pub dropped_killed: u64,
    /// See [`NetStats::dropped_link`].
    pub dropped_link: u64,
    /// See [`NetStats::dropped_partition`].
    pub dropped_partition: u64,
    /// See [`NetStats::bytes_sent`].
    pub bytes_sent: u64,
}

impl NetStats {
    /// Snapshot with one-directional consistency: a completion visible
    /// here implies its initiation is too (never `rpcs_ok > rpcs_sent`).
    pub fn snapshot(&self) -> NetStatsSnapshot {
        // ordering: Acquire-load every completion counter FIRST; each
        // pairs with the Release increments in `inc_completion`, so the
        // initiation increments that preceded them (program order in the
        // transport: sent before ok/timeout, dropped before its cause)
        // happen-before the Relaxed initiation loads below.
        let dropped_killed = self.dropped_killed.load(Ordering::Acquire);
        let dropped_link = self.dropped_link.load(Ordering::Acquire);
        let dropped_partition = self.dropped_partition.load(Ordering::Acquire);
        let dropped = self.dropped.load(Ordering::Acquire);
        let rpcs_ok = self.rpcs_ok.load(Ordering::Acquire);
        let timeouts = self.timeouts.load(Ordering::Acquire);
        // ordering: Relaxed is enough for initiations — they are loaded
        // after the Acquire fence-points above and may only err toward
        // over-counting in-flight RPCs, which consumers tolerate.
        let rpcs_sent = self.rpcs_sent.load(Ordering::Relaxed);
        let bytes_sent = self.bytes_sent.load(Ordering::Relaxed);
        NetStatsSnapshot {
            rpcs_sent,
            rpcs_ok,
            timeouts,
            dropped,
            dropped_killed,
            dropped_link,
            dropped_partition,
            bytes_sent,
        }
    }

    /// Count an *initiation* (`rpcs_sent`) — something later completions
    /// refer back to.
    #[inline]
    pub(crate) fn inc(counter: &AtomicU64) {
        // ordering: Relaxed — initiations need no publication of their
        // own; visibility is carried by the completion that follows.
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a *completion* (`rpcs_ok`, `timeouts`, `dropped` and its
    /// per-cause splits) — publishes the initiation that preceded it.
    #[inline]
    pub(crate) fn inc_completion(counter: &AtomicU64) {
        // ordering: Release pairs with the Acquire loads in `snapshot`;
        // RMWs keep the release sequence alive across threads.
        counter.fetch_add(1, Ordering::Release);
    }

    /// Add to a byte/volume counter.
    #[inline]
    pub(crate) fn add(counter: &AtomicU64, v: u64) {
        // ordering: Relaxed — pure statistic, no cross-counter invariant.
        counter.fetch_add(v, Ordering::Relaxed);
    }
}

impl ftc_obs::Export for NetStatsSnapshot {
    fn export_into(&self, out: &mut Vec<ftc_obs::Sample>) {
        out.push(ftc_obs::Sample::counter(
            "ftc_net_rpcs_sent_total",
            self.rpcs_sent,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_net_rpcs_ok_total",
            self.rpcs_ok,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_net_timeouts_total",
            self.timeouts,
        ));
        out.push(ftc_obs::Sample::counter(
            "ftc_net_dropped_total",
            self.dropped,
        ));
        out.push(
            ftc_obs::Sample::counter("ftc_net_dropped_cause_total", self.dropped_killed)
                .with_label("cause", "killed"),
        );
        out.push(
            ftc_obs::Sample::counter("ftc_net_dropped_cause_total", self.dropped_link)
                .with_label("cause", "link"),
        );
        out.push(
            ftc_obs::Sample::counter("ftc_net_dropped_cause_total", self.dropped_partition)
                .with_label("cause", "partition"),
        );
        out.push(ftc_obs::Sample::counter(
            "ftc_net_bytes_sent_total",
            self.bytes_sent,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;

    #[test]
    fn snapshot_exports_with_cause_labels() {
        use ftc_obs::Export;
        let snap = NetStatsSnapshot {
            rpcs_sent: 10,
            dropped: 3,
            dropped_killed: 2,
            dropped_link: 1,
            ..Default::default()
        };
        let samples = snap.export();
        assert_eq!(samples.len(), 8);
        let causes: Vec<_> = samples
            .iter()
            .filter(|s| s.name == "ftc_net_dropped_cause_total")
            .collect();
        assert_eq!(causes.len(), 3);
        assert_eq!(
            causes[0].labels,
            vec![("cause".to_owned(), "killed".to_owned())]
        );
    }

    #[test]
    fn snapshot_reflects_counters() {
        let s = NetStats::default();
        NetStats::inc(&s.rpcs_sent);
        NetStats::inc(&s.rpcs_sent);
        NetStats::add(&s.bytes_sent, 1024);
        let snap = s.snapshot();
        assert_eq!(snap.rpcs_sent, 2);
        assert_eq!(snap.bytes_sent, 1024);
        assert_eq!(snap.timeouts, 0);
    }

    #[test]
    fn concurrent_snapshots_never_see_completion_before_initiation() {
        // Writers do initiation-then-completion pairs exactly like the
        // transport; a reader snapshotting mid-flight must never observe
        // ok+timeouts > sent or a cause-sum > dropped.
        let stats = Arc::new(NetStats::default());
        let stop = Arc::new(AtomicBool::new(false));
        let mut writers = Vec::new();
        for w in 0..4u64 {
            let s = Arc::clone(&stats);
            let stop = Arc::clone(&stop);
            writers.push(std::thread::spawn(move || {
                let mut i = 0u64;
                // ordering: Relaxed — plain stop flag, no data published.
                while !stop.load(Ordering::Relaxed) {
                    NetStats::inc(&s.rpcs_sent);
                    match (i + w) % 3 {
                        0 => NetStats::inc_completion(&s.rpcs_ok),
                        1 => NetStats::inc_completion(&s.timeouts),
                        _ => {
                            NetStats::inc_completion(&s.dropped);
                            NetStats::inc_completion(&s.dropped_link);
                            NetStats::inc_completion(&s.timeouts);
                        }
                    }
                    i += 1;
                }
            }));
        }
        for _ in 0..20_000 {
            let snap = stats.snapshot();
            assert!(
                snap.rpcs_ok + snap.timeouts <= snap.rpcs_sent,
                "completion without initiation: ok={} timeouts={} sent={}",
                snap.rpcs_ok,
                snap.timeouts,
                snap.rpcs_sent
            );
            assert!(
                snap.dropped_killed + snap.dropped_link + snap.dropped_partition <= snap.dropped,
                "cause-sum exceeds dropped total"
            );
            assert!(snap.dropped <= snap.rpcs_sent);
        }
        // ordering: Relaxed — plain stop flag, no data published.
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().expect("writer thread");
        }
    }
}
