//! Vector-clock tracing piggybacked on the transport.
//!
//! When tracing is enabled on a [`crate::Network`], every RPC leg carries a
//! vector-clock stamp: the sender ticks its own component and attaches a
//! snapshot; the receiver merges the stamp into its clock before recording
//! any event caused by the message. Upper layers (the cache client and
//! server) additionally record *state events* — ring-membership epoch
//! changes, failure-detector transitions, cache-map mutations — under
//! their own actor component.
//!
//! The result is a totally-ordered-per-actor, causally-stamped event log
//! that `ftc-analysis` replays offline to reconstruct the happens-before
//! graph and flag conflicting unordered event pairs (e.g. a read served
//! under a ring epoch that was concurrently invalidated).
//!
//! Tracing costs one mutex acquisition per recorded event and is fully
//! disabled (a single `RwLock` read per RPC) until
//! [`crate::Network::enable_tracing`] is called. Stamps ride outside
//! [`crate::Payload::wire_size`], so enabling tracing does not perturb the
//! latency model — campaigns replay identically with tracing on or off.

use ftc_hashring::NodeId;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;

/// A vector clock: one logical counter per actor (node or client) id.
///
/// Entries are kept canonical — zero counters are never stored — so
/// structural equality coincides with clock equality.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock {
    entries: BTreeMap<u32, u64>,
}

impl VClock {
    /// The zero clock.
    pub fn new() -> Self {
        VClock::default()
    }

    /// This actor's counter (0 if absent).
    pub fn get(&self, actor: u32) -> u64 {
        self.entries.get(&actor).copied().unwrap_or(0)
    }

    /// Increment `actor`'s component; returns the new value.
    pub fn tick(&mut self, actor: u32) -> u64 {
        let v = self.entries.entry(actor).or_insert(0);
        *v += 1;
        *v
    }

    /// Pointwise maximum with `other` (the receive-side merge).
    pub fn merge(&mut self, other: &VClock) {
        for (&a, &v) in &other.entries {
            let e = self.entries.entry(a).or_insert(0);
            if *e < v {
                *e = v;
            }
        }
    }

    /// True when every component of `self` is ≤ the matching component of
    /// `other`.
    pub fn leq(&self, other: &VClock) -> bool {
        self.entries.iter().all(|(&a, &v)| v <= other.get(a))
    }

    /// Strict happens-before: `self ≤ other` and the clocks differ.
    pub fn happens_before(&self, other: &VClock) -> bool {
        self.leq(other) && self != other
    }

    /// Neither clock happens-before the other (and they are not equal).
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// Set `actor`'s component exactly. A zero keeps the clock canonical
    /// by removing the entry. Used by offline analyses to build and
    /// perturb clocks; live tracing only ever ticks and merges.
    pub fn set(&mut self, actor: u32, value: u64) {
        if value == 0 {
            self.entries.remove(&actor);
        } else {
            self.entries.insert(actor, value);
        }
    }

    /// The (actor, counter) pairs, ascending by actor id.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.entries.iter().map(|(&a, &v)| (a, v))
    }

    /// Number of actors with a nonzero component.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True for the zero clock.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "n{a}:{v}")?;
        }
        write!(f, "}}")
    }
}

/// What happened, as recorded in the event log.
///
/// The first four variants are emitted by the transport itself; the rest
/// are *state events* recorded by upper layers through
/// [`Tracer::record`] / [`crate::Incoming::trace_state`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEventKind {
    /// An RPC request left `actor` for `to`.
    MsgSend {
        /// Destination node.
        to: NodeId,
    },
    /// A request from `from` was absorbed by the serving node.
    MsgRecv {
        /// Originating node.
        from: NodeId,
    },
    /// A reply left the serving node for `to`.
    ReplySend {
        /// Destination (the original caller).
        to: NodeId,
    },
    /// A reply from `from` was absorbed by the caller.
    ReplyRecv {
        /// The node that served the request.
        from: NodeId,
    },
    /// A read completed under the actor's placement view.
    ReadServed {
        /// The cache key (file path).
        key: String,
        /// The owner that served (or was believed to own) the key.
        owner: NodeId,
        /// The actor's ring epoch at completion.
        epoch: u64,
    },
    /// The actor's placement membership changed (ring epoch bump).
    RingUpdate {
        /// The node added or removed.
        node: NodeId,
        /// Epoch before the change.
        old_epoch: u64,
        /// Epoch after the change (must be `old_epoch + 1`).
        new_epoch: u64,
        /// True for an add (rejoin), false for a removal.
        joined: bool,
    },
    /// The failure detector counted a timeout below the declare limit.
    Suspect {
        /// The suspected node.
        node: NodeId,
        /// Timeouts currently in the suspicion window.
        count: u32,
    },
    /// The failure detector declared `node` failed.
    Declare {
        /// The declared node.
        node: NodeId,
    },
    /// The actor re-admitted a repaired node (cleared its failed flag).
    Readmit {
        /// The re-admitted node.
        node: NodeId,
    },
    /// A key landed in the actor's cache map (put, recache, or mover).
    CacheInsert {
        /// The cache key.
        key: String,
    },
    /// A key was evicted from the actor's cache map.
    CacheEvict {
        /// The cache key.
        key: String,
    },
    /// A read completed under the actor's *policy* epoch (adaptive FT):
    /// the read is attributed to the live-policy generation current when
    /// its bytes were returned to the caller.
    PolicyRead {
        /// The cache key (file path).
        key: String,
        /// The actor's policy epoch at completion.
        policy_epoch: u64,
    },
    /// The runtime policy controller installed a new live policy for the
    /// actor (policy epoch bump).
    PolicyChange {
        /// Policy epoch before the switch.
        old_epoch: u64,
        /// Policy epoch after the switch (must be `old_epoch + 1`).
        new_epoch: u64,
    },
}

/// One entry of the event log: who, when (causally), and what.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global append order (total order of *recording*, not causality).
    pub seq: u64,
    /// The actor the event belongs to.
    pub actor: NodeId,
    /// The actor's clock *after* ticking for this event.
    pub clock: VClock,
    /// The event itself.
    pub kind: TraceEventKind,
}

#[derive(Debug, Default)]
struct TracerInner {
    clocks: BTreeMap<u32, VClock>,
    log: Vec<TraceRecord>,
    seq: u64,
}

impl TracerInner {
    fn push(&mut self, actor: NodeId, kind: TraceEventKind) -> VClock {
        let clock = self.clocks.entry(actor.0).or_default();
        clock.tick(actor.0);
        let snap = clock.clone();
        self.log.push(TraceRecord {
            seq: self.seq,
            actor,
            clock: snap.clone(),
            kind,
        });
        self.seq += 1;
        snap
    }
}

/// The shared trace collector: per-actor vector clocks plus the append-only
/// event log. One lives on a [`crate::Network`] once tracing is enabled.
#[derive(Debug, Default)]
pub struct Tracer {
    inner: Mutex<TracerInner>,
}

impl Tracer {
    /// A fresh, empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Record a state event under `actor` (tick, no merge).
    pub fn record(&self, actor: NodeId, kind: TraceEventKind) {
        self.inner.lock().push(actor, kind);
    }

    /// Record a send under `actor` and return the stamp to piggyback on
    /// the message.
    pub fn record_send(&self, actor: NodeId, kind: TraceEventKind) -> VClock {
        self.inner.lock().push(actor, kind)
    }

    /// Merge a received stamp into `actor`'s clock, then record the
    /// receive event. Must run before any event the message causes.
    pub fn record_recv(&self, actor: NodeId, stamp: &VClock, kind: TraceEventKind) {
        let mut inner = self.inner.lock();
        inner.clocks.entry(actor.0).or_default().merge(stamp);
        inner.push(actor, kind);
    }

    /// Number of records collected so far.
    pub fn len(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// True when no records have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain and return the log (clocks keep advancing; a campaign can
    /// drain per phase).
    pub fn take(&self) -> Vec<TraceRecord> {
        std::mem::take(&mut self.inner.lock().log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(1), 0);
        assert_eq!(c.tick(1), 1);
        assert_eq!(c.tick(1), 2);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(0);
        b.tick(1);
        a.merge(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 1);
    }

    #[test]
    fn happens_before_via_message() {
        // a send, merge into b, b ticks: a's stamp < b's clock.
        let mut a = VClock::new();
        a.tick(0);
        let stamp = a.clone();
        let mut b = VClock::new();
        b.merge(&stamp);
        b.tick(1);
        assert!(stamp.happens_before(&b));
        assert!(!b.happens_before(&stamp));
        assert!(!stamp.concurrent(&b));
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VClock::new();
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        assert!(a.concurrent(&b));
        assert!(b.concurrent(&a));
        assert!(!a.happens_before(&b));
    }

    #[test]
    fn hb_is_irreflexive() {
        let mut a = VClock::new();
        a.tick(3);
        assert!(!a.happens_before(&a.clone()));
        assert!(!a.concurrent(&a.clone()));
    }

    #[test]
    fn tracer_orders_one_actor_totally() {
        let t = Tracer::new();
        t.record(NodeId(0), TraceEventKind::Declare { node: NodeId(1) });
        t.record(NodeId(0), TraceEventKind::Readmit { node: NodeId(1) });
        let log = t.take();
        assert_eq!(log.len(), 2);
        assert!(log[0].clock.happens_before(&log[1].clock));
        assert!(t.is_empty(), "take drains the log");
    }

    #[test]
    fn tracer_send_recv_creates_edge() {
        let t = Tracer::new();
        let stamp = t.record_send(NodeId(0), TraceEventKind::MsgSend { to: NodeId(1) });
        t.record_recv(
            NodeId(1),
            &stamp,
            TraceEventKind::MsgRecv { from: NodeId(0) },
        );
        // An unrelated actor stays concurrent with both.
        t.record(NodeId(2), TraceEventKind::Declare { node: NodeId(9) });
        let log = t.take();
        assert!(log[0].clock.happens_before(&log[1].clock));
        assert!(log[2].clock.concurrent(&log[0].clock));
        assert!(log[2].clock.concurrent(&log[1].clock));
    }

    #[test]
    fn clock_display() {
        let mut c = VClock::new();
        c.tick(2);
        c.tick(7);
        c.tick(7);
        assert_eq!(c.to_string(), "{n2:1,n7:2}");
    }
}
