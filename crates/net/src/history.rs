//! Per-key operation histories for linearizability checking.
//!
//! While the vector-clock [`crate::trace`] layer captures *causality*
//! (which events could have influenced which), this layer captures the
//! *client-observable contract*: every completed read and write as an
//! interval `[invoke, ret]` in clock time, tagged with the value digest,
//! the serving node, and the ring epoch it was attributed to. The
//! Wing–Gong-style checker in `ftc-analysis::linz` consumes these
//! records per key: a history is accepted iff some linearization
//! consistent with the real-time intervals has every read return the
//! latest completed write, and no read runs against a ring epoch its
//! own client had already retired (the epoch-aware part of the spec).
//!
//! Recording mirrors the [`crate::trace::Tracer`] pattern: enabled once
//! on the [`crate::Network`], then reachable from every
//! [`crate::Endpoint`] and [`crate::Incoming`]; disabled costs one
//! RwLock read per op site.

use ftc_hashring::NodeId;
use ftc_time::ClockHandle;
use parking_lot::Mutex;
use std::time::{Duration, Instant};

/// FNV-1a over the value bytes — the digest stored in [`OpRecord`].
/// Collisions are astronomically unlikely at campaign scale, and a
/// hand-rolled 8-line hash keeps the recorder dependency-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What kind of operation an [`OpRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// A client read that completed with data.
    Read,
    /// A value landing on a node: replica write, recache push, or the
    /// t=0 dataset staging (seeded via
    /// [`HistoryRecorder::seed_write`]).
    Write,
    /// A client advanced its ring-epoch view (membership change
    /// observed). Carries no key or value; `epoch` is the *new* epoch.
    EpochBump,
}

/// One completed operation in the history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Recorder-assigned id, dense in completion order.
    pub id: u64,
    /// Who performed the op (client rank node for reads and epoch
    /// bumps, storing node for writes).
    pub actor: NodeId,
    /// Operation kind.
    pub kind: OpKind,
    /// The file path / placement key; empty for [`OpKind::EpochBump`].
    pub key: String,
    /// The node that served (read) or stored (write) the value.
    pub node: NodeId,
    /// Ring epoch: the client's placement-view epoch for reads, the new
    /// epoch for bumps, 0 for writes (servers don't see the ring).
    pub epoch: u64,
    /// Invocation time, as an offset from recorder creation.
    pub invoke: Duration,
    /// Response time (≥ `invoke`); equal to `invoke` for ops whose
    /// linearization point is their serve instant (writes, bumps).
    pub ret: Duration,
    /// [`fnv1a`] digest of the value bytes; 0 for epoch bumps.
    pub digest: u64,
    /// The read was served through the failover path (successor serve /
    /// hinted handoff) — the documented exception the epoch rule skips.
    pub handoff: bool,
}

/// Shared, thread-safe history collector. All timestamps come from the
/// owning network's clock, so histories recorded under a virtual clock
/// are deterministic and replay byte-identically.
pub struct HistoryRecorder {
    clock: ClockHandle,
    birth: Instant,
    inner: Mutex<Inner>,
}

struct Inner {
    log: Vec<OpRecord>,
    next: u64,
}

impl HistoryRecorder {
    /// A recorder stamping offsets against `clock`'s current instant.
    pub fn new(clock: ClockHandle) -> Self {
        let birth = clock.now();
        HistoryRecorder {
            clock,
            birth,
            inner: Mutex::new(Inner {
                log: Vec::new(),
                next: 0,
            }),
        }
    }

    /// Current offset since recorder creation — capture this *before*
    /// issuing an RPC to get the op's invoke time.
    pub fn now(&self) -> Duration {
        self.clock.since(self.birth)
    }

    /// Append a completed op. The record's `id` is overwritten with the
    /// next dense id; pass 0.
    pub fn record(&self, mut op: OpRecord) {
        let mut g = self.inner.lock();
        op.id = g.next;
        g.next += 1;
        g.log.push(op);
    }

    /// Register the ground-truth value a key was staged with before any
    /// traffic ran: a write at t=0 by a synthetic "PFS" actor. Gives
    /// every key a defined initial value so the first read is checkable.
    pub fn seed_write(&self, key: &str, digest: u64) {
        self.record(OpRecord {
            id: 0,
            actor: NodeId(u32::MAX),
            kind: OpKind::Write,
            key: key.to_owned(),
            node: NodeId(u32::MAX),
            epoch: 0,
            invoke: Duration::ZERO,
            ret: Duration::ZERO,
            digest,
            handoff: false,
        });
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.inner.lock().log.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the history for checking.
    pub fn take(&self) -> Vec<OpRecord> {
        std::mem::take(&mut self.inner.lock().log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"ft-cache"), fnv1a(b"ft-cache"));
        assert_ne!(fnv1a(b"ft-cache"), fnv1a(b"ft-cachf"));
    }

    #[test]
    fn recorder_assigns_dense_ids_and_drains() {
        let r = HistoryRecorder::new(ClockHandle::wall());
        r.seed_write("a.dat", 7);
        let t0 = r.now();
        r.record(OpRecord {
            id: 999, // overwritten
            actor: NodeId(100),
            kind: OpKind::Read,
            key: "a.dat".into(),
            node: NodeId(1),
            epoch: 1,
            invoke: t0,
            ret: r.now(),
            digest: 7,
            handoff: false,
        });
        assert_eq!(r.len(), 2);
        let ops = r.take();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].id, 0);
        assert_eq!(ops[1].id, 1);
        assert_eq!(ops[1].kind, OpKind::Read);
        assert!(ops[1].ret >= ops[1].invoke);
        assert!(r.is_empty());
    }
}
