//! RPC error taxonomy.
//!
//! The failure detector in `ftc-core` keys off exactly these variants: a
//! [`RpcError::Timeout`] increments the per-node timeout counter (the
//! paper's `TIMEOUT_LIMIT` logic), while the other variants are immediate
//! local errors that do not consume a timeout interval.

use ftc_hashring::NodeId;
use std::fmt;

/// Why an RPC did not produce a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No response within the deadline — the only signal a client gets
    /// from a crashed or partitioned server (the paper's TTL expiry).
    Timeout {
        /// The server that did not answer.
        to: NodeId,
    },
    /// The destination was never registered on this network.
    UnknownNode(NodeId),
    /// The server dropped its mailbox (clean shutdown) before replying.
    Disconnected(NodeId),
    /// The caller's own endpoint was shut down.
    LocalShutdown,
    /// The server answered, but only to say it shed the request under
    /// load. Distinct from [`RpcError::Timeout`] on purpose: a shedding
    /// node is alive, so this must never feed the failure detector.
    Overloaded {
        /// The server that shed the request.
        to: NodeId,
    },
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout { to } => write!(f, "rpc to {to} timed out"),
            RpcError::UnknownNode(n) => write!(f, "unknown destination node {n}"),
            RpcError::Disconnected(n) => write!(f, "node {n} disconnected"),
            RpcError::LocalShutdown => write!(f, "local endpoint shut down"),
            RpcError::Overloaded { to } => write!(f, "node {to} shed the request (overloaded)"),
        }
    }
}

impl std::error::Error for RpcError {}

impl RpcError {
    /// True when the error is the kind that should feed the failure
    /// detector (i.e. consistent with a dead or unreachable server).
    pub fn indicates_failure(&self) -> bool {
        matches!(self, RpcError::Timeout { .. } | RpcError::Disconnected(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_classification() {
        let t = RpcError::Timeout { to: NodeId(3) };
        assert_eq!(t.to_string(), "rpc to n3 timed out");
        assert!(t.indicates_failure());
        assert!(RpcError::Disconnected(NodeId(1)).indicates_failure());
        assert!(!RpcError::UnknownNode(NodeId(1)).indicates_failure());
        assert!(!RpcError::LocalShutdown.indicates_failure());
        let o = RpcError::Overloaded { to: NodeId(2) };
        assert_eq!(o.to_string(), "node n2 shed the request (overloaded)");
        assert!(
            !o.indicates_failure(),
            "a shedding node is alive; Overloaded must not feed the detector"
        );
        assert_eq!(
            RpcError::UnknownNode(NodeId(9)).to_string(),
            "unknown destination node n9"
        );
    }
}
