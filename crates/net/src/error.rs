//! RPC error taxonomy.
//!
//! The failure detector in `ftc-core` keys off exactly these variants: a
//! [`RpcError::Timeout`] increments the per-node timeout counter (the
//! paper's `TIMEOUT_LIMIT` logic), while the other variants are immediate
//! local errors that do not consume a timeout interval.

use ftc_hashring::NodeId;
use std::fmt;

/// Why an RPC did not produce a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RpcError {
    /// No response within the deadline — the only signal a client gets
    /// from a crashed or partitioned server (the paper's TTL expiry).
    Timeout {
        /// The server that did not answer.
        to: NodeId,
    },
    /// The destination was never registered on this network.
    UnknownNode(NodeId),
    /// The server dropped its mailbox (clean shutdown) before replying.
    Disconnected(NodeId),
    /// The caller's own endpoint was shut down.
    LocalShutdown,
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Timeout { to } => write!(f, "rpc to {to} timed out"),
            RpcError::UnknownNode(n) => write!(f, "unknown destination node {n}"),
            RpcError::Disconnected(n) => write!(f, "node {n} disconnected"),
            RpcError::LocalShutdown => write!(f, "local endpoint shut down"),
        }
    }
}

impl std::error::Error for RpcError {}

impl RpcError {
    /// True when the error is the kind that should feed the failure
    /// detector (i.e. consistent with a dead or unreachable server).
    pub fn indicates_failure(&self) -> bool {
        matches!(self, RpcError::Timeout { .. } | RpcError::Disconnected(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_classification() {
        let t = RpcError::Timeout { to: NodeId(3) };
        assert_eq!(t.to_string(), "rpc to n3 timed out");
        assert!(t.indicates_failure());
        assert!(RpcError::Disconnected(NodeId(1)).indicates_failure());
        assert!(!RpcError::UnknownNode(NodeId(1)).indicates_failure());
        assert!(!RpcError::LocalShutdown.indicates_failure());
        assert_eq!(
            RpcError::UnknownNode(NodeId(9)).to_string(),
            "unknown destination node n9"
        );
    }
}
