//! # ftc-net — interconnect substrate for FT-Cache
//!
//! The paper's FT-Cache runs over the Mercury RPC library on Frontier's
//! Slingshot fabric. This crate is the in-process stand-in: a mailbox
//! transport where each compute node is addressed by [`ftc_hashring::NodeId`],
//! RPCs carry a deadline, and faults are injected at the fabric — a killed
//! node is *silent* (callers time out), because that is the only signal a
//! real client gets from a drained or crashed node.
//!
//! The [`LatencyModel`] is shared with the discrete-event simulator in
//! `ftc-sim`, so the threaded cluster and the 1024-node simulations are
//! calibrated by the same constants.
//!
//! ```
//! use ftc_net::Network;
//! use ftc_hashring::NodeId;
//! use std::time::Duration;
//!
//! let net: Network<String, String> = Network::instant(42);
//! let mbox = net.register(NodeId(0));
//! std::thread::spawn(move || {
//!     while let Some(inc) = mbox.recv() {
//!         let req = inc.req.clone();
//!         inc.reply(format!("echo {req}"));
//!     }
//! });
//! let ep = net.endpoint(NodeId(1));
//! let resp = ep.call(NodeId(0), "hi".into(), Duration::from_millis(100)).unwrap();
//! assert_eq!(resp, "echo hi");
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod history;
pub mod latency;
pub mod stats;
pub mod trace;
pub mod transport;
pub mod xport;

pub use error::RpcError;
pub use history::{fnv1a, HistoryRecorder, OpKind, OpRecord};
pub use latency::LatencyModel;
pub use stats::{NetStats, NetStatsSnapshot};
pub use trace::{TraceEventKind, TraceRecord, Tracer, VClock};
pub use transport::{Endpoint, Incoming, Mailbox, Network, Payload};
pub use xport::{Caller, Inbound, Listener, Transport};
