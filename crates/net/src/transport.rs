//! The in-process message transport — this reproduction's stand-in for
//! Mercury RPC over Slingshot.
//!
//! Every node owns a [`Mailbox`] (server side) and any number of
//! [`Endpoint`]s (client side). An RPC is a request message plus a one-shot
//! reply channel; the caller blocks on the reply with a deadline, exactly
//! like Mercury's `HG_Trigger` loop with a TTL in the original FT-Cache
//! client.
//!
//! ## Fault injection
//!
//! * [`Network::kill`] — the node vanishes: deliveries to it are silently
//!   discarded, so callers observe *timeouts*, never errors. This mirrors
//!   `sacct update State=DRAIN` in the paper's experiments: the victim
//!   stops responding mid-run with no goodbye.
//! * [`Network::set_drop_prob`] — i.i.d. message loss (transient network
//!   faults; exercises the detector's false-positive damping).
//! * [`Network::delay_node`] — adds a latency spike for deliveries to one
//!   node (a slow-but-alive node; must *not* be declared dead if the spike
//!   stays under TTL × threshold).

use crate::error::RpcError;
use crate::latency::LatencyModel;
use crate::stats::{NetStats, NetStatsSnapshot};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use ftc_hashring::NodeId;
use parking_lot::{Mutex, RwLock};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Anything that can cross the transport. `wire_size` feeds the latency
/// model's bandwidth term; the default suits small control messages.
pub trait Payload: Send + 'static {
    /// Approximate serialized size in bytes.
    fn wire_size(&self) -> usize {
        64
    }
}

impl Payload for () {}
impl Payload for u64 {}
impl Payload for String {
    fn wire_size(&self) -> usize {
        self.len()
    }
}
impl Payload for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}
impl Payload for bytes::Bytes {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

/// A request delivered to a server, carrying its reply path.
pub struct Incoming<Req, Resp> {
    /// Sender node.
    pub from: NodeId,
    /// The request payload.
    pub req: Req,
    reply_to: Sender<Resp>,
    net: Arc<Inner<Req, Resp>>,
}

impl<Req: Payload, Resp: Payload> Incoming<Req, Resp> {
    /// Reply immediately (zero response-serialization cost).
    pub fn reply(self, resp: Resp) {
        NetStats::add(&self.net.stats.bytes_sent, resp.wire_size() as u64);
        // The caller may have timed out and dropped the receiver; a late
        // reply is then discarded, as on a real network.
        let _ = self.reply_to.send(resp);
    }

    /// Reply after blocking for the response's network-serialization time.
    ///
    /// The *server* thread bears the cost, modeling NIC send occupancy —
    /// back-to-back large responses from one node serialize, which is what
    /// makes an overloaded recache target a straggler.
    pub fn reply_sized(self, resp: Resp) {
        let bytes = resp.wire_size();
        let delay = {
            let mut rng = self.net.rng.lock();
            self.net.latency.delay(bytes, rng.random::<f64>())
        };
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        self.reply(resp);
    }

    /// Drop the request without answering (used to emulate a hung server).
    pub fn ignore(self) {}
}

/// Server-side receive handle for one node.
pub struct Mailbox<Req, Resp> {
    node: NodeId,
    rx: Receiver<Incoming<Req, Resp>>,
}

impl<Req: Payload, Resp: Payload> Mailbox<Req, Resp> {
    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Block until a request arrives or every endpoint is gone.
    pub fn recv(&self) -> Option<Incoming<Req, Resp>> {
        self.rx.recv().ok()
    }

    /// Block with a deadline; `None` on timeout or disconnect.
    pub fn recv_timeout(&self, d: Duration) -> Option<Incoming<Req, Resp>> {
        self.rx.recv_timeout(d).ok()
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<Incoming<Req, Resp>> {
        self.rx.try_recv().ok()
    }

    /// Number of queued requests (server load introspection).
    pub fn backlog(&self) -> usize {
        self.rx.len()
    }
}

struct Inner<Req, Resp> {
    mailboxes: RwLock<HashMap<NodeId, Sender<Incoming<Req, Resp>>>>,
    down: RwLock<HashSet<NodeId>>,
    extra_delay: RwLock<HashMap<NodeId, Duration>>,
    drop_prob: RwLock<f64>,
    rng: Mutex<StdRng>,
    latency: LatencyModel,
    stats: NetStats,
}

/// The shared in-process network fabric.
pub struct Network<Req, Resp> {
    inner: Arc<Inner<Req, Resp>>,
}

impl<Req, Resp> Clone for Network<Req, Resp> {
    fn clone(&self) -> Self {
        Network {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<Req: Payload, Resp: Payload> Network<Req, Resp> {
    /// A network with the given link model; `seed` makes jitter and drop
    /// decisions reproducible.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        Network {
            inner: Arc::new(Inner {
                mailboxes: RwLock::new(HashMap::new()),
                down: RwLock::new(HashSet::new()),
                extra_delay: RwLock::new(HashMap::new()),
                drop_prob: RwLock::new(0.0),
                rng: Mutex::new(StdRng::seed_from_u64(seed)),
                latency,
                stats: NetStats::default(),
            }),
        }
    }

    /// Zero-latency network (protocol-logic tests).
    pub fn instant(seed: u64) -> Self {
        Self::new(LatencyModel::instant(), seed)
    }

    /// Register a node and obtain its server mailbox. Re-registering an id
    /// replaces the previous mailbox (elastic rejoin).
    pub fn register(&self, node: NodeId) -> Mailbox<Req, Resp> {
        let (tx, rx) = unbounded();
        self.inner.mailboxes.write().insert(node, tx);
        self.inner.down.write().remove(&node);
        Mailbox { node, rx }
    }

    /// Client-side handle bound to a source node id.
    pub fn endpoint(&self, me: NodeId) -> Endpoint<Req, Resp> {
        Endpoint {
            net: Arc::clone(&self.inner),
            me,
        }
    }

    /// Make `node` unresponsive: all future deliveries to it are dropped,
    /// so every caller sees a timeout. The mailbox stays registered — a
    /// dead node is *silent*, not absent.
    pub fn kill(&self, node: NodeId) {
        self.inner.down.write().insert(node);
    }

    /// Undo [`kill`](Self::kill) (node repaired and rejoined).
    pub fn revive(&self, node: NodeId) {
        self.inner.down.write().remove(&node);
    }

    /// True if `node` is currently marked down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.inner.down.read().contains(&node)
    }

    /// Set i.i.d. per-message drop probability (both legs).
    pub fn set_drop_prob(&self, p: f64) {
        *self.inner.drop_prob.write() = p.clamp(0.0, 1.0);
    }

    /// Add `extra` one-way delay for deliveries *to* `node`
    /// (`Duration::ZERO` clears it).
    pub fn delay_node(&self, node: NodeId, extra: Duration) {
        if extra.is_zero() {
            self.inner.extra_delay.write().remove(&node);
        } else {
            self.inner.extra_delay.write().insert(node, extra);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// The link-cost model in force.
    pub fn latency_model(&self) -> LatencyModel {
        self.inner.latency
    }
}

/// Client-side RPC handle.
pub struct Endpoint<Req, Resp> {
    net: Arc<Inner<Req, Resp>>,
    me: NodeId,
}

impl<Req, Resp> Clone for Endpoint<Req, Resp> {
    fn clone(&self) -> Self {
        Endpoint {
            net: Arc::clone(&self.net),
            me: self.me,
        }
    }
}

impl<Req: Payload, Resp: Payload> Endpoint<Req, Resp> {
    /// The node this endpoint sends as.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// Issue an RPC with a deadline.
    ///
    /// Returns [`RpcError::Timeout`] when no reply arrives in time — which
    /// is also what calls to killed or drop-unlucky nodes degrade to; the
    /// caller *cannot distinguish* a dead node from a slow one except by
    /// the TTL expiring, exactly the observability model of §IV-A.
    pub fn call(&self, to: NodeId, req: Req, timeout: Duration) -> Result<Resp, RpcError> {
        let start = Instant::now();
        NetStats::inc(&self.net.stats.rpcs_sent);

        let mbox = match self.net.mailboxes.read().get(&to) {
            Some(tx) => tx.clone(),
            None => return Err(RpcError::UnknownNode(to)),
        };

        let req_bytes = req.wire_size();
        let (delay, dropped) = {
            let mut rng = self.net.rng.lock();
            let u: f64 = rng.random();
            let p = *self.net.drop_prob.read();
            let dropped = p > 0.0 && rng.random::<f64>() < p;
            (self.net.latency.delay(req_bytes, u), dropped)
        };
        let extra = self.net.extra_delay.read().get(&to).copied();
        let flight = delay + extra.unwrap_or(Duration::ZERO);
        if !flight.is_zero() {
            std::thread::sleep(flight.min(timeout));
        }

        let (reply_tx, reply_rx) = bounded::<Resp>(1);
        let down = self.net.down.read().contains(&to);
        let delivered = if down || dropped {
            NetStats::inc(&self.net.stats.dropped);
            false
        } else {
            NetStats::add(&self.net.stats.bytes_sent, req_bytes as u64);
            mbox.send(Incoming {
                from: self.me,
                req,
                reply_to: reply_tx.clone(),
                net: Arc::clone(&self.net),
            })
            .is_ok()
        };
        // Hold our clone of the reply sender so an undelivered request
        // waits out the full deadline instead of erroring fast — a silent
        // peer and a lossy link must look identical to the caller.
        let _keep_alive = reply_tx;

        let remaining = timeout.saturating_sub(start.elapsed());
        if remaining.is_zero() {
            // The request's flight time alone consumed the deadline: the
            // message may still arrive and be served, but the caller has
            // already given up. Deterministic timeout, no reply race.
            NetStats::inc(&self.net.stats.timeouts);
            return Err(RpcError::Timeout { to });
        }
        match reply_rx.recv_timeout(remaining) {
            Ok(resp) => {
                NetStats::inc(&self.net.stats.rpcs_ok);
                Ok(resp)
            }
            Err(RecvTimeoutError::Timeout) => {
                NetStats::inc(&self.net.stats.timeouts);
                Err(RpcError::Timeout { to })
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Only reachable if the server dropped the message without
                // replying after delivery; semantically identical to a
                // crash mid-service, so present it as a timeout after the
                // full deadline.
                let _ = delivered;
                std::thread::sleep(timeout.saturating_sub(start.elapsed()));
                NetStats::inc(&self.net.stats.timeouts);
                Err(RpcError::Timeout { to })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    const TTL: Duration = Duration::from_millis(50);

    fn echo_server(net: &Network<String, String>, node: NodeId) -> thread::JoinHandle<()> {
        let mbox = net.register(node);
        thread::spawn(move || {
            while let Some(inc) = mbox.recv() {
                let reply = format!("{}:{}", inc.from, inc.req);
                inc.reply(reply);
            }
        })
    }

    #[test]
    fn basic_request_response() {
        let net: Network<String, String> = Network::instant(1);
        let _h = echo_server(&net, NodeId(0));
        let ep = net.endpoint(NodeId(9));
        let resp = ep.call(NodeId(0), "ping".into(), TTL).unwrap();
        assert_eq!(resp, "n9:ping");
        let s = net.stats();
        assert_eq!(s.rpcs_sent, 1);
        assert_eq!(s.rpcs_ok, 1);
        assert_eq!(s.timeouts, 0);
    }

    #[test]
    fn unknown_node_is_immediate_error() {
        let net: Network<String, String> = Network::instant(2);
        let ep = net.endpoint(NodeId(0));
        let t0 = Instant::now();
        let err = ep.call(NodeId(42), "x".into(), TTL).unwrap_err();
        assert_eq!(err, RpcError::UnknownNode(NodeId(42)));
        assert!(t0.elapsed() < TTL, "unknown node must fail fast");
    }

    #[test]
    fn killed_node_times_out_silently() {
        let net: Network<String, String> = Network::instant(3);
        let _h = echo_server(&net, NodeId(0));
        net.kill(NodeId(0));
        let ep = net.endpoint(NodeId(1));
        let t0 = Instant::now();
        let err = ep.call(NodeId(0), "ping".into(), TTL).unwrap_err();
        assert_eq!(err, RpcError::Timeout { to: NodeId(0) });
        assert!(t0.elapsed() >= TTL, "timeout must wait out the TTL");
        assert_eq!(net.stats().dropped, 1);
    }

    #[test]
    fn revive_restores_service() {
        let net: Network<String, String> = Network::instant(4);
        let _h = echo_server(&net, NodeId(0));
        net.kill(NodeId(0));
        let ep = net.endpoint(NodeId(1));
        assert!(ep.call(NodeId(0), "a".into(), TTL).is_err());
        net.revive(NodeId(0));
        assert_eq!(ep.call(NodeId(0), "b".into(), TTL).unwrap(), "n1:b");
    }

    #[test]
    fn full_drop_prob_loses_everything() {
        let net: Network<String, String> = Network::instant(5);
        let _h = echo_server(&net, NodeId(0));
        net.set_drop_prob(1.0);
        let ep = net.endpoint(NodeId(1));
        assert!(matches!(
            ep.call(NodeId(0), "x".into(), TTL),
            Err(RpcError::Timeout { .. })
        ));
        net.set_drop_prob(0.0);
        assert!(ep.call(NodeId(0), "y".into(), TTL).is_ok());
    }

    #[test]
    fn delay_spike_slows_but_succeeds_within_ttl() {
        let net: Network<String, String> = Network::instant(6);
        let _h = echo_server(&net, NodeId(0));
        net.delay_node(NodeId(0), Duration::from_millis(15));
        let ep = net.endpoint(NodeId(1));
        let t0 = Instant::now();
        let resp = ep.call(NodeId(0), "slow".into(), TTL).unwrap();
        assert_eq!(resp, "n1:slow");
        assert!(t0.elapsed() >= Duration::from_millis(15));
        net.delay_node(NodeId(0), Duration::ZERO);
        let t1 = Instant::now();
        ep.call(NodeId(0), "fast".into(), TTL).unwrap();
        assert!(t1.elapsed() < Duration::from_millis(15));
    }

    #[test]
    fn spike_beyond_ttl_times_out() {
        let net: Network<String, String> = Network::instant(7);
        let _h = echo_server(&net, NodeId(0));
        net.delay_node(NodeId(0), Duration::from_millis(200));
        let ep = net.endpoint(NodeId(1));
        assert!(matches!(
            ep.call(NodeId(0), "x".into(), TTL),
            Err(RpcError::Timeout { .. })
        ));
    }

    #[test]
    fn concurrent_clients_one_server() {
        let net: Network<String, String> = Network::instant(8);
        let _h = echo_server(&net, NodeId(0));
        let mut joins = Vec::new();
        for c in 1..=8u32 {
            let ep = net.endpoint(NodeId(c));
            joins.push(thread::spawn(move || {
                for i in 0..50 {
                    let r = ep
                        .call(NodeId(0), format!("m{i}"), Duration::from_secs(2))
                        .unwrap();
                    assert_eq!(r, format!("n{c}:m{i}"));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(net.stats().rpcs_ok, 8 * 50);
    }

    #[test]
    fn reregister_replaces_mailbox() {
        let net: Network<String, String> = Network::instant(9);
        {
            let _old = net.register(NodeId(0));
            // old mailbox dropped here — node silently gone
        }
        let _h = echo_server(&net, NodeId(0)); // rejoin
        let ep = net.endpoint(NodeId(1));
        assert_eq!(ep.call(NodeId(0), "hi".into(), TTL).unwrap(), "n1:hi");
    }

    #[test]
    fn dropped_mailbox_presents_as_timeout() {
        let net: Network<String, String> = Network::instant(10);
        let mbox = net.register(NodeId(0));
        drop(mbox);
        let ep = net.endpoint(NodeId(1));
        let t0 = Instant::now();
        let err = ep.call(NodeId(0), "x".into(), TTL).unwrap_err();
        assert_eq!(err, RpcError::Timeout { to: NodeId(0) });
        assert!(t0.elapsed() >= TTL);
    }

    #[test]
    fn backlog_counts_queued_requests() {
        let net: Network<String, String> = Network::instant(11);
        let mbox = net.register(NodeId(0));
        let ep = net.endpoint(NodeId(1));
        let h: Vec<_> = (0..3)
            .map(|_| {
                let ep = ep.clone();
                thread::spawn(move || {
                    let _ = ep.call(NodeId(0), "q".into(), Duration::from_millis(100));
                })
            })
            .collect();
        // Wait for all three to be enqueued.
        let t0 = Instant::now();
        while mbox.backlog() < 3 && t0.elapsed() < Duration::from_secs(1) {
            thread::yield_now();
        }
        assert_eq!(mbox.backlog(), 3);
        while let Some(inc) = mbox.try_recv() {
            inc.reply("ok".into());
        }
        for j in h {
            j.join().unwrap();
        }
    }

    #[test]
    fn payload_wire_sizes() {
        assert_eq!(().wire_size(), 64);
        assert_eq!("abcd".to_string().wire_size(), 4);
        assert_eq!(vec![0u8; 10].wire_size(), 10);
        assert_eq!(bytes::Bytes::from_static(b"xyz").wire_size(), 3);
    }
}
