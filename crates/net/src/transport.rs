//! The in-process message transport — this reproduction's stand-in for
//! Mercury RPC over Slingshot.
//!
//! Every node owns a [`Mailbox`] (server side) and any number of
//! [`Endpoint`]s (client side). An RPC is a request message plus a one-shot
//! reply channel; the caller blocks on the reply with a deadline, exactly
//! like Mercury's `HG_Trigger` loop with a TTL in the original FT-Cache
//! client.
//!
//! ## Fault injection
//!
//! * [`Network::kill`] — the node vanishes: deliveries to it are silently
//!   discarded, so callers observe *timeouts*, never errors. This mirrors
//!   `sacct update State=DRAIN` in the paper's experiments: the victim
//!   stops responding mid-run with no goodbye. [`Network::revive`] undoes
//!   it (crash-restart; the respawned server starts with a cold mailbox).
//! * [`Network::set_drop_prob`] — i.i.d. message loss (transient network
//!   faults; exercises the detector's false-positive damping).
//! * [`Network::delay_node`] — adds a latency spike for deliveries to one
//!   node: the *degraded-node* mode. The node still serves every request,
//!   just slowly; as long as the spike stays under the TTL it must *not*
//!   be declared dead.
//! * [`Network::partition_oneway`] / [`Network::partition`] — per-link
//!   blackholes, optionally asymmetric. A one-way partition from server to
//!   client lets the request through but swallows the reply (gray
//!   failure: the server did the work, the caller still times out).
//! * [`Network::set_flaky`] — deterministic duty-cycle loss on one node's
//!   ingress link: `up` deliveries succeed, then `down` deliveries drop,
//!   repeating. Intermittent connectivity without randomness, so seeded
//!   campaigns replay exactly.
//!
//! When several fault rules match one delivery, exactly one cause is
//! charged, in priority order: partition > killed > flaky > i.i.d. drop.
//! [`NetStats`] splits the `dropped` total by cause.

use crate::error::RpcError;
use crate::latency::LatencyModel;
use crate::stats::{NetStats, NetStatsSnapshot};
use crate::trace::{TraceEventKind, Tracer, VClock};
use ftc_hashring::NodeId;
use ftc_time::{ClockHandle, ClockReceiver, ClockSender, RecvTimeoutError};
use parking_lot::{Mutex, RwLock};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

/// Anything that can cross the transport. `wire_size` feeds the latency
/// model's bandwidth term; the default suits small control messages.
pub trait Payload: Send + 'static {
    /// Approximate serialized size in bytes.
    fn wire_size(&self) -> usize {
        64
    }
}

impl Payload for () {}
impl Payload for u64 {}
impl Payload for String {
    fn wire_size(&self) -> usize {
        self.len()
    }
}
impl Payload for Vec<u8> {
    fn wire_size(&self) -> usize {
        self.len()
    }
}
impl Payload for bytes::Bytes {
    fn wire_size(&self) -> usize {
        self.len()
    }
}

/// A reply payload plus the server's piggybacked clock stamp (present only
/// while tracing is enabled).
struct Traced<T> {
    value: T,
    stamp: Option<VClock>,
}

/// A request delivered to a server, carrying its reply path.
pub struct Incoming<Req, Resp> {
    /// Sender node.
    pub from: NodeId,
    /// The request payload.
    pub req: Req,
    /// The node this request was addressed to (the one now serving it).
    served_by: NodeId,
    /// The sender's vector-clock stamp, if tracing was on at send time.
    stamp: Option<VClock>,
    reply_to: ClockSender<Traced<Resp>>,
    net: Arc<Inner<Req, Resp>>,
}

impl<Req: Payload, Resp: Payload> Incoming<Req, Resp> {
    /// The node this request was addressed to (the one now serving it).
    pub fn served_by(&self) -> NodeId {
        self.served_by
    }

    /// Merge the request's piggybacked clock stamp into the serving node's
    /// clock and record the receive event. Runs automatically on
    /// [`reply`](Self::reply) / [`ignore`](Self::ignore); call it (or
    /// [`trace_state`](Self::trace_state)) earlier if the server records
    /// state events while the request is in hand, so those events are
    /// causally after the send. Idempotent.
    pub fn absorb(&mut self) {
        if let Some(stamp) = self.stamp.take() {
            if let Some(t) = self.net.tracer.read().clone() {
                t.record_recv(
                    self.served_by,
                    &stamp,
                    TraceEventKind::MsgRecv { from: self.from },
                );
            }
        }
    }

    /// Record a state event under the serving node's actor, first
    /// absorbing the request stamp so the event is causally after the
    /// send. No-op while tracing is disabled.
    pub fn trace_state(&mut self, kind: TraceEventKind) {
        self.absorb();
        if let Some(t) = self.net.tracer.read().clone() {
            t.record(self.served_by, kind);
        }
    }

    /// The network's active history recorder, if enabled. Servers use
    /// this to log value arrivals (replica writes, recache pushes).
    pub fn history(&self) -> Option<Arc<crate::history::HistoryRecorder>> {
        self.net.history.read().clone()
    }

    /// Reply immediately (zero response-serialization cost).
    ///
    /// The reply leg honors partitions independently of the request leg:
    /// under a one-way partition server→client the work is done but the
    /// answer never arrives, so the caller times out. That asymmetry is
    /// the canonical gray failure the chaos harness exercises.
    pub fn reply(mut self, resp: Resp) {
        self.absorb();
        // Stamp before the partition check: the server *did* send the
        // reply; a swallowed reply is a lost message, not a non-event.
        let stamp =
            self.net.tracer.read().as_ref().map(|t| {
                t.record_send(self.served_by, TraceEventKind::ReplySend { to: self.from })
            });
        if self
            .net
            .partitions
            .read()
            .contains(&(self.served_by, self.from))
        {
            self.net
                .record_drop(DropCause::Partition, self.served_by, self.from);
            return;
        }
        NetStats::add(&self.net.stats.bytes_sent, resp.wire_size() as u64);
        // The caller may have timed out and dropped the receiver; a late
        // reply is then discarded, as on a real network.
        let _ = self.reply_to.send(Traced { value: resp, stamp });
    }

    /// Reply after blocking for the response's network-serialization time.
    ///
    /// The *server* thread bears the cost, modeling NIC send occupancy —
    /// back-to-back large responses from one node serialize, which is what
    /// makes an overloaded recache target a straggler.
    pub fn reply_sized(self, resp: Resp) {
        let bytes = resp.wire_size();
        let delay = {
            let mut rng = self.net.rng.lock();
            self.net.latency.delay(bytes, rng.random::<f64>())
        };
        if !delay.is_zero() {
            self.net.clock.sleep(delay);
        }
        self.reply(resp);
    }

    /// Drop the request without answering (used to emulate a hung server).
    pub fn ignore(mut self) {
        self.absorb();
    }
}

/// Server-side receive handle for one node.
pub struct Mailbox<Req, Resp> {
    node: NodeId,
    rx: ClockReceiver<Incoming<Req, Resp>>,
}

impl<Req: Payload, Resp: Payload> Mailbox<Req, Resp> {
    /// The owning node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Block until a request arrives or every endpoint is gone.
    pub fn recv(&self) -> Option<Incoming<Req, Resp>> {
        self.rx.recv().ok()
    }

    /// Block with a deadline; `None` on timeout or disconnect.
    pub fn recv_timeout(&self, d: Duration) -> Option<Incoming<Req, Resp>> {
        self.rx.recv_timeout(d).ok()
    }

    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<Incoming<Req, Resp>> {
        self.rx.try_recv().ok()
    }

    /// Number of queued requests (server load introspection).
    pub fn backlog(&self) -> usize {
        self.rx.len()
    }
}

/// Deterministic duty-cycle loss on one node's ingress link: `up`
/// consecutive deliveries succeed, then `down` consecutive deliveries are
/// dropped, repeating. Counter-based so a seeded campaign replays exactly.
struct FlakyLink {
    up: u32,
    down: u32,
    pos: u32,
}

impl FlakyLink {
    /// Advance the duty cycle one delivery; `true` means drop this one.
    fn advance(&mut self) -> bool {
        let in_down = self.pos >= self.up;
        self.pos = (self.pos + 1) % (self.up + self.down);
        in_down
    }
}

/// Why a delivery was discarded (priority order when rules overlap).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DropCause {
    Partition,
    Killed,
    Flaky,
    Link,
}

/// Observability handles cached at attach time so the RPC fast path pays
/// one `RwLock` read + one histogram `fetch_add`, never a registry lookup.
struct NetObs {
    hub: Arc<ftc_obs::ObsHub>,
    rpc_ok_us: Arc<ftc_obs::Histogram>,
    rpc_timeout_us: Arc<ftc_obs::Histogram>,
}

struct Inner<Req, Resp> {
    clock: ClockHandle,
    mailboxes: RwLock<HashMap<NodeId, ClockSender<Incoming<Req, Resp>>>>,
    down: RwLock<HashSet<NodeId>>,
    extra_delay: RwLock<HashMap<NodeId, Duration>>,
    partitions: RwLock<HashSet<(NodeId, NodeId)>>,
    flaky: Mutex<HashMap<NodeId, FlakyLink>>,
    drop_prob: RwLock<f64>,
    rng: Mutex<StdRng>,
    latency: LatencyModel,
    stats: NetStats,
    tracer: RwLock<Option<Arc<Tracer>>>,
    history: RwLock<Option<Arc<crate::history::HistoryRecorder>>>,
    obs: RwLock<Option<NetObs>>,
}

impl<Req, Resp> Inner<Req, Resp> {
    /// Decide the fate of one request-leg delivery from `from` to `to`.
    /// Exactly one cause is charged; later rules are not consulted (and
    /// the flaky duty cycle does not advance) once an earlier one matches.
    fn request_drop_cause(&self, from: NodeId, to: NodeId) -> Option<DropCause> {
        if self.partitions.read().contains(&(from, to)) {
            return Some(DropCause::Partition);
        }
        if self.down.read().contains(&to) {
            return Some(DropCause::Killed);
        }
        if let Some(link) = self.flaky.lock().get_mut(&to) {
            if link.advance() {
                return Some(DropCause::Flaky);
            }
        }
        let p = *self.drop_prob.read();
        if p > 0.0 && self.rng.lock().random::<f64>() < p {
            return Some(DropCause::Link);
        }
        None
    }

    fn record_drop(&self, cause: DropCause, from: NodeId, to: NodeId) {
        NetStats::inc_completion(&self.stats.dropped);
        let by_cause = match cause {
            DropCause::Partition => &self.stats.dropped_partition,
            DropCause::Killed => &self.stats.dropped_killed,
            DropCause::Flaky | DropCause::Link => &self.stats.dropped_link,
        };
        NetStats::inc_completion(by_cause);
        if let Some(obs) = self.obs.read().as_ref() {
            obs.hub
                .flight
                .record("net", "drop", format!("{from}->{to} {cause:?}"));
        }
    }

    /// Feed an RPC outcome to the attached observability plane, if any.
    fn observe_rpc(&self, to: NodeId, elapsed: Duration, ok: bool) {
        if let Some(obs) = self.obs.read().as_ref() {
            if ok {
                obs.rpc_ok_us.record_micros(elapsed);
            } else {
                obs.rpc_timeout_us.record_micros(elapsed);
                obs.hub.flight.record(
                    "net",
                    "rpc_timeout",
                    format!("{to} after {:.1}ms", elapsed.as_secs_f64() * 1e3),
                );
            }
        }
    }
}

/// The shared in-process network fabric.
pub struct Network<Req, Resp> {
    inner: Arc<Inner<Req, Resp>>,
}

impl<Req, Resp> Clone for Network<Req, Resp> {
    fn clone(&self) -> Self {
        Network {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<Req: Payload, Resp: Payload> Network<Req, Resp> {
    /// A network with the given link model; `seed` makes jitter and drop
    /// decisions reproducible. Runs on the wall clock.
    pub fn new(latency: LatencyModel, seed: u64) -> Self {
        Self::with_clock(latency, seed, ClockHandle::wall())
    }

    /// A network whose flight delays, deadlines, and mailbox blocking all
    /// go through `clock` — the constructor virtual-time clusters use.
    pub fn with_clock(latency: LatencyModel, seed: u64, clock: ClockHandle) -> Self {
        Network {
            inner: Arc::new(Inner {
                clock,
                mailboxes: RwLock::new(HashMap::new()),
                down: RwLock::new(HashSet::new()),
                extra_delay: RwLock::new(HashMap::new()),
                partitions: RwLock::new(HashSet::new()),
                flaky: Mutex::new(HashMap::new()),
                drop_prob: RwLock::new(0.0),
                rng: Mutex::new(StdRng::seed_from_u64(seed)),
                latency,
                stats: NetStats::default(),
                tracer: RwLock::new(None),
                history: RwLock::new(None),
                obs: RwLock::new(None),
            }),
        }
    }

    /// Zero-latency network (protocol-logic tests).
    pub fn instant(seed: u64) -> Self {
        Self::new(LatencyModel::instant(), seed)
    }

    /// Register a node and obtain its server mailbox. Re-registering an id
    /// replaces the previous mailbox (elastic rejoin).
    pub fn register(&self, node: NodeId) -> Mailbox<Req, Resp> {
        // Bounded by the campaign workload (closed-loop clients, finite
        // plans); server-side admission control bounds the serve queue
        // behind it. lint:allow(bounded-queue)
        let (tx, rx) = self.inner.clock.channel();
        self.inner.mailboxes.write().insert(node, tx);
        self.inner.down.write().remove(&node);
        Mailbox { node, rx }
    }

    /// The clock this fabric runs on.
    pub fn clock(&self) -> ClockHandle {
        self.inner.clock.clone()
    }

    /// Client-side handle bound to a source node id.
    pub fn endpoint(&self, me: NodeId) -> Endpoint<Req, Resp> {
        Endpoint {
            net: Arc::clone(&self.inner),
            me,
        }
    }

    /// Make `node` unresponsive: all future deliveries to it are dropped,
    /// so every caller sees a timeout. The mailbox stays registered — a
    /// dead node is *silent*, not absent.
    pub fn kill(&self, node: NodeId) {
        self.inner.down.write().insert(node);
    }

    /// Undo [`kill`](Self::kill) (node repaired and rejoined).
    pub fn revive(&self, node: NodeId) {
        self.inner.down.write().remove(&node);
    }

    /// True if `node` is currently marked down.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.inner.down.read().contains(&node)
    }

    /// Set i.i.d. per-message drop probability (both legs).
    pub fn set_drop_prob(&self, p: f64) {
        *self.inner.drop_prob.write() = p.clamp(0.0, 1.0);
    }

    /// Add `extra` one-way delay for deliveries *to* `node`
    /// (`Duration::ZERO` clears it). This is the *degraded-node* mode:
    /// the node serves everything, just slowly.
    pub fn delay_node(&self, node: NodeId, extra: Duration) {
        if extra.is_zero() {
            self.inner.extra_delay.write().remove(&node);
        } else {
            self.inner.extra_delay.write().insert(node, extra);
        }
    }

    /// Block deliveries in the single direction `from` → `to`. Traffic
    /// the other way is unaffected, which is what makes gray failures:
    /// a request can be served whose reply never comes home.
    pub fn partition_oneway(&self, from: NodeId, to: NodeId) {
        self.inner.partitions.write().insert((from, to));
    }

    /// Block deliveries in both directions between `a` and `b`.
    pub fn partition(&self, a: NodeId, b: NodeId) {
        let mut parts = self.inner.partitions.write();
        parts.insert((a, b));
        parts.insert((b, a));
    }

    /// Remove any partition rules between `a` and `b` (both directions).
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let mut parts = self.inner.partitions.write();
        parts.remove(&(a, b));
        parts.remove(&(b, a));
    }

    /// Remove every partition rule.
    pub fn heal_all_partitions(&self) {
        self.inner.partitions.write().clear();
    }

    /// True if deliveries `from` → `to` are currently blocked by a
    /// partition rule.
    pub fn is_partitioned(&self, from: NodeId, to: NodeId) -> bool {
        self.inner.partitions.read().contains(&(from, to))
    }

    /// Make `node`'s ingress link intermittently lossy: `up` consecutive
    /// deliveries succeed, then `down` consecutive deliveries drop,
    /// repeating from the next delivery. Deterministic (no randomness),
    /// so seeded chaos campaigns replay byte-identically. `down == 0`
    /// clears the rule.
    pub fn set_flaky(&self, node: NodeId, up: u32, down: u32) {
        if down == 0 {
            self.inner.flaky.lock().remove(&node);
        } else {
            self.inner
                .flaky
                .lock()
                .insert(node, FlakyLink { up, down, pos: 0 });
        }
    }

    /// Remove the flaky-link rule on `node`, if any.
    pub fn clear_flaky(&self, node: NodeId) {
        self.inner.flaky.lock().remove(&node);
    }

    /// Turn on vector-clock tracing and return the shared collector.
    /// Idempotent: a second call returns the existing tracer. Already
    /// in-flight messages (stamped before the switch) are unaffected.
    pub fn enable_tracing(&self) -> Arc<Tracer> {
        let mut slot = self.inner.tracer.write();
        match slot.as_ref() {
            Some(t) => Arc::clone(t),
            None => {
                let t = Arc::new(Tracer::new());
                *slot = Some(Arc::clone(&t));
                t
            }
        }
    }

    /// The active tracer, if tracing has been enabled.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.inner.tracer.read().clone()
    }

    /// Turn on operation-history recording (for linearizability
    /// checking) and return the shared recorder. Timestamps come from
    /// this fabric's clock. Idempotent, like
    /// [`enable_tracing`](Self::enable_tracing).
    pub fn enable_history(&self) -> Arc<crate::history::HistoryRecorder> {
        let mut slot = self.inner.history.write();
        match slot.as_ref() {
            Some(h) => Arc::clone(h),
            None => {
                let h = Arc::new(crate::history::HistoryRecorder::new(
                    self.inner.clock.clone(),
                ));
                *slot = Some(Arc::clone(&h));
                h
            }
        }
    }

    /// The active history recorder, if history recording is enabled.
    pub fn history(&self) -> Option<Arc<crate::history::HistoryRecorder>> {
        self.inner.history.read().clone()
    }

    /// Attach an observability hub: RPC outcomes feed the
    /// `ftc_net_rpc_ok_us` / `ftc_net_rpc_timeout_us` histograms and
    /// drops/timeouts leave flight-recorder events. Histogram handles are
    /// resolved once here, so the per-RPC cost is one lock-free record.
    /// Idempotent; the last attached hub wins.
    pub fn attach_obs(&self, hub: &Arc<ftc_obs::ObsHub>) {
        let obs = NetObs {
            hub: Arc::clone(hub),
            rpc_ok_us: hub.registry.histogram("ftc_net_rpc_ok_us"),
            rpc_timeout_us: hub.registry.histogram("ftc_net_rpc_timeout_us"),
        };
        *self.inner.obs.write() = Some(obs);
    }

    /// Counter snapshot.
    pub fn stats(&self) -> NetStatsSnapshot {
        self.inner.stats.snapshot()
    }

    /// The link-cost model in force.
    pub fn latency_model(&self) -> LatencyModel {
        self.inner.latency
    }
}

/// Client-side RPC handle.
pub struct Endpoint<Req, Resp> {
    net: Arc<Inner<Req, Resp>>,
    me: NodeId,
}

impl<Req, Resp> Clone for Endpoint<Req, Resp> {
    fn clone(&self) -> Self {
        Endpoint {
            net: Arc::clone(&self.net),
            me: self.me,
        }
    }
}

impl<Req: Payload, Resp: Payload> Endpoint<Req, Resp> {
    /// The node this endpoint sends as.
    pub fn node(&self) -> NodeId {
        self.me
    }

    /// The clock the owning fabric runs on — upper layers reuse it for
    /// their own deadlines so RPC time and protocol time agree.
    pub fn clock(&self) -> ClockHandle {
        self.net.clock.clone()
    }

    /// The network's active tracer, if tracing has been enabled. Upper
    /// layers use this to record state events (ring updates, detector
    /// transitions) under this endpoint's actor.
    pub fn tracer(&self) -> Option<Arc<Tracer>> {
        self.net.tracer.read().clone()
    }

    /// The network's active history recorder, if enabled. Clients use
    /// this to log completed reads and epoch bumps for the
    /// linearizability checker.
    pub fn history(&self) -> Option<Arc<crate::history::HistoryRecorder>> {
        self.net.history.read().clone()
    }

    /// Issue an RPC with a deadline.
    ///
    /// Returns [`RpcError::Timeout`] when no reply arrives in time — which
    /// is also what calls to killed or drop-unlucky nodes degrade to; the
    /// caller *cannot distinguish* a dead node from a slow one except by
    /// the TTL expiring, exactly the observability model of §IV-A.
    pub fn call(&self, to: NodeId, req: Req, timeout: Duration) -> Result<Resp, RpcError> {
        let clock = &self.net.clock;
        let start = clock.now();
        NetStats::inc(&self.net.stats.rpcs_sent);

        let mbox = match self.net.mailboxes.read().get(&to) {
            Some(tx) => tx.clone(),
            None => return Err(RpcError::UnknownNode(to)),
        };

        let req_bytes = req.wire_size();
        let delay = {
            let mut rng = self.net.rng.lock();
            let u: f64 = rng.random();
            self.net.latency.delay(req_bytes, u)
        };
        let extra = self.net.extra_delay.read().get(&to).copied();
        let flight = delay + extra.unwrap_or(Duration::ZERO);
        if !flight.is_zero() {
            clock.sleep(flight.min(timeout));
        }

        let (reply_tx, reply_rx) = clock.channel::<Traced<Resp>>();
        let tracer = self.net.tracer.read().clone();
        // Stamp before the drop decision: the send happens either way,
        // the message just may be lost in flight (no matching receive).
        let stamp = tracer
            .as_ref()
            .map(|t| t.record_send(self.me, TraceEventKind::MsgSend { to }));
        let delivered = if let Some(cause) = self.net.request_drop_cause(self.me, to) {
            self.net.record_drop(cause, self.me, to);
            false
        } else {
            NetStats::add(&self.net.stats.bytes_sent, req_bytes as u64);
            mbox.send(Incoming {
                from: self.me,
                req,
                served_by: to,
                stamp,
                reply_to: reply_tx.clone(),
                net: Arc::clone(&self.net),
            })
            .is_ok()
        };
        // Hold our clone of the reply sender so an undelivered request
        // waits out the full deadline instead of erroring fast — a silent
        // peer and a lossy link must look identical to the caller.
        let _keep_alive = reply_tx;

        let remaining = timeout.saturating_sub(clock.since(start));
        if remaining.is_zero() {
            // The request's flight time alone consumed the deadline: the
            // message may still arrive and be served, but the caller has
            // already given up. Deterministic timeout, no reply race.
            NetStats::inc_completion(&self.net.stats.timeouts);
            self.net.observe_rpc(to, clock.since(start), false);
            return Err(RpcError::Timeout { to });
        }
        match reply_rx.recv_timeout(remaining) {
            Ok(traced) => {
                NetStats::inc_completion(&self.net.stats.rpcs_ok);
                self.net.observe_rpc(to, clock.since(start), true);
                if let (Some(t), Some(s)) = (tracer.as_ref(), traced.stamp.as_ref()) {
                    t.record_recv(self.me, s, TraceEventKind::ReplyRecv { from: to });
                }
                Ok(traced.value)
            }
            Err(RecvTimeoutError::Timeout) => {
                NetStats::inc_completion(&self.net.stats.timeouts);
                self.net.observe_rpc(to, clock.since(start), false);
                Err(RpcError::Timeout { to })
            }
            Err(RecvTimeoutError::Disconnected) => {
                // Only reachable if the server dropped the message without
                // replying after delivery; semantically identical to a
                // crash mid-service, so present it as a timeout after the
                // full deadline.
                let _ = delivered;
                clock.sleep(timeout.saturating_sub(clock.since(start)));
                NetStats::inc_completion(&self.net.stats.timeouts);
                self.net.observe_rpc(to, clock.since(start), false);
                Err(RpcError::Timeout { to })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Instant;

    const TTL: Duration = Duration::from_millis(50);

    fn echo_server(net: &Network<String, String>, node: NodeId) -> thread::JoinHandle<()> {
        let mbox = net.register(node);
        thread::spawn(move || {
            while let Some(inc) = mbox.recv() {
                let reply = format!("{}:{}", inc.from, inc.req);
                inc.reply(reply);
            }
        })
    }

    #[test]
    fn basic_request_response() {
        let net: Network<String, String> = Network::instant(1);
        let _h = echo_server(&net, NodeId(0));
        let ep = net.endpoint(NodeId(9));
        let resp = ep.call(NodeId(0), "ping".into(), TTL).unwrap();
        assert_eq!(resp, "n9:ping");
        let s = net.stats();
        assert_eq!(s.rpcs_sent, 1);
        assert_eq!(s.rpcs_ok, 1);
        assert_eq!(s.timeouts, 0);
    }

    #[test]
    fn unknown_node_is_immediate_error() {
        let net: Network<String, String> = Network::instant(2);
        let ep = net.endpoint(NodeId(0));
        let t0 = Instant::now();
        let err = ep.call(NodeId(42), "x".into(), TTL).unwrap_err();
        assert_eq!(err, RpcError::UnknownNode(NodeId(42)));
        assert!(t0.elapsed() < TTL, "unknown node must fail fast");
    }

    #[test]
    fn killed_node_times_out_silently() {
        let net: Network<String, String> = Network::instant(3);
        let _h = echo_server(&net, NodeId(0));
        net.kill(NodeId(0));
        let ep = net.endpoint(NodeId(1));
        let t0 = Instant::now();
        let err = ep.call(NodeId(0), "ping".into(), TTL).unwrap_err();
        assert_eq!(err, RpcError::Timeout { to: NodeId(0) });
        assert!(t0.elapsed() >= TTL, "timeout must wait out the TTL");
        assert_eq!(net.stats().dropped, 1);
        assert_eq!(net.stats().dropped_killed, 1);
    }

    #[test]
    fn revive_restores_service() {
        let net: Network<String, String> = Network::instant(4);
        let _h = echo_server(&net, NodeId(0));
        net.kill(NodeId(0));
        let ep = net.endpoint(NodeId(1));
        assert!(ep.call(NodeId(0), "a".into(), TTL).is_err());
        net.revive(NodeId(0));
        assert_eq!(ep.call(NodeId(0), "b".into(), TTL).unwrap(), "n1:b");
    }

    #[test]
    fn full_drop_prob_loses_everything() {
        let net: Network<String, String> = Network::instant(5);
        let _h = echo_server(&net, NodeId(0));
        net.set_drop_prob(1.0);
        let ep = net.endpoint(NodeId(1));
        assert!(matches!(
            ep.call(NodeId(0), "x".into(), TTL),
            Err(RpcError::Timeout { .. })
        ));
        net.set_drop_prob(0.0);
        assert!(ep.call(NodeId(0), "y".into(), TTL).is_ok());
    }

    #[test]
    fn delay_spike_slows_but_succeeds_within_ttl() {
        let net: Network<String, String> = Network::instant(6);
        let _h = echo_server(&net, NodeId(0));
        net.delay_node(NodeId(0), Duration::from_millis(15));
        let ep = net.endpoint(NodeId(1));
        let t0 = Instant::now();
        let resp = ep.call(NodeId(0), "slow".into(), TTL).unwrap();
        assert_eq!(resp, "n1:slow");
        assert!(t0.elapsed() >= Duration::from_millis(15));
        net.delay_node(NodeId(0), Duration::ZERO);
        let t1 = Instant::now();
        ep.call(NodeId(0), "fast".into(), TTL).unwrap();
        assert!(t1.elapsed() < Duration::from_millis(15));
    }

    #[test]
    fn spike_beyond_ttl_times_out() {
        let net: Network<String, String> = Network::instant(7);
        let _h = echo_server(&net, NodeId(0));
        net.delay_node(NodeId(0), Duration::from_millis(200));
        let ep = net.endpoint(NodeId(1));
        assert!(matches!(
            ep.call(NodeId(0), "x".into(), TTL),
            Err(RpcError::Timeout { .. })
        ));
    }

    #[test]
    fn concurrent_clients_one_server() {
        let net: Network<String, String> = Network::instant(8);
        let _h = echo_server(&net, NodeId(0));
        let mut joins = Vec::new();
        for c in 1..=8u32 {
            let ep = net.endpoint(NodeId(c));
            joins.push(thread::spawn(move || {
                for i in 0..50 {
                    let r = ep
                        .call(NodeId(0), format!("m{i}"), Duration::from_secs(2))
                        .unwrap();
                    assert_eq!(r, format!("n{c}:m{i}"));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(net.stats().rpcs_ok, 8 * 50);
    }

    #[test]
    fn reregister_replaces_mailbox() {
        let net: Network<String, String> = Network::instant(9);
        {
            let _old = net.register(NodeId(0));
            // old mailbox dropped here — node silently gone
        }
        let _h = echo_server(&net, NodeId(0)); // rejoin
        let ep = net.endpoint(NodeId(1));
        assert_eq!(ep.call(NodeId(0), "hi".into(), TTL).unwrap(), "n1:hi");
    }

    #[test]
    fn dropped_mailbox_presents_as_timeout() {
        let net: Network<String, String> = Network::instant(10);
        let mbox = net.register(NodeId(0));
        drop(mbox);
        let ep = net.endpoint(NodeId(1));
        let t0 = Instant::now();
        let err = ep.call(NodeId(0), "x".into(), TTL).unwrap_err();
        assert_eq!(err, RpcError::Timeout { to: NodeId(0) });
        assert!(t0.elapsed() >= TTL);
    }

    #[test]
    fn backlog_counts_queued_requests() {
        let net: Network<String, String> = Network::instant(11);
        let mbox = net.register(NodeId(0));
        let ep = net.endpoint(NodeId(1));
        let h: Vec<_> = (0..3)
            .map(|_| {
                let ep = ep.clone();
                thread::spawn(move || {
                    let _ = ep.call(NodeId(0), "q".into(), Duration::from_millis(100));
                })
            })
            .collect();
        // Wait for all three to be enqueued.
        let t0 = Instant::now();
        while mbox.backlog() < 3 && t0.elapsed() < Duration::from_secs(1) {
            thread::yield_now();
        }
        assert_eq!(mbox.backlog(), 3);
        while let Some(inc) = mbox.try_recv() {
            inc.reply("ok".into());
        }
        for j in h {
            j.join().unwrap();
        }
    }

    #[test]
    fn oneway_partition_blocks_request_leg_only_for_that_pair() {
        let net: Network<String, String> = Network::instant(20);
        let _h = echo_server(&net, NodeId(0));
        net.partition_oneway(NodeId(1), NodeId(0));
        let cut = net.endpoint(NodeId(1));
        let fine = net.endpoint(NodeId(2));
        assert!(matches!(
            cut.call(NodeId(0), "x".into(), TTL),
            Err(RpcError::Timeout { .. })
        ));
        assert_eq!(fine.call(NodeId(0), "y".into(), TTL).unwrap(), "n2:y");
        let s = net.stats();
        assert_eq!(s.dropped_partition, 1);
        assert_eq!(s.dropped, 1);
        net.heal(NodeId(1), NodeId(0));
        assert_eq!(cut.call(NodeId(0), "z".into(), TTL).unwrap(), "n1:z");
    }

    #[test]
    fn oneway_partition_on_reply_leg_is_gray_failure() {
        // Request gets through and is served; the reply is swallowed.
        let net: Network<String, String> = Network::instant(21);
        let _h = echo_server(&net, NodeId(0));
        net.partition_oneway(NodeId(0), NodeId(1));
        let ep = net.endpoint(NodeId(1));
        let t0 = Instant::now();
        assert!(matches!(
            ep.call(NodeId(0), "x".into(), TTL),
            Err(RpcError::Timeout { .. })
        ));
        assert!(t0.elapsed() >= TTL);
        let s = net.stats();
        assert_eq!(s.dropped_partition, 1, "reply leg must be charged");
        assert_eq!(s.rpcs_ok, 0);
        net.heal_all_partitions();
        assert_eq!(ep.call(NodeId(0), "y".into(), TTL).unwrap(), "n1:y");
    }

    #[test]
    fn symmetric_partition_blocks_both_directions() {
        let net: Network<String, String> = Network::instant(22);
        let _h0 = echo_server(&net, NodeId(0));
        let _h1 = echo_server(&net, NodeId(1));
        net.partition(NodeId(0), NodeId(1));
        assert!(net.is_partitioned(NodeId(0), NodeId(1)));
        assert!(net.is_partitioned(NodeId(1), NodeId(0)));
        let ep0 = net.endpoint(NodeId(0));
        let ep1 = net.endpoint(NodeId(1));
        assert!(ep0.call(NodeId(1), "a".into(), TTL).is_err());
        assert!(ep1.call(NodeId(0), "b".into(), TTL).is_err());
        // A third party still reaches both sides.
        let ep9 = net.endpoint(NodeId(9));
        assert!(ep9.call(NodeId(0), "c".into(), TTL).is_ok());
        assert!(ep9.call(NodeId(1), "d".into(), TTL).is_ok());
    }

    #[test]
    fn flaky_duty_cycle_is_deterministic() {
        let net: Network<String, String> = Network::instant(23);
        let _h = echo_server(&net, NodeId(0));
        net.set_flaky(NodeId(0), 2, 1); // ok, ok, drop, repeating
        let ep = net.endpoint(NodeId(1));
        let mut outcomes = Vec::new();
        for i in 0..6 {
            outcomes.push(ep.call(NodeId(0), format!("m{i}"), TTL).is_ok());
        }
        assert_eq!(outcomes, [true, true, false, true, true, false]);
        assert_eq!(net.stats().dropped_link, 2);
        net.clear_flaky(NodeId(0));
        for i in 0..4 {
            assert!(ep.call(NodeId(0), format!("c{i}"), TTL).is_ok());
        }
    }

    #[test]
    fn dropped_total_equals_sum_of_causes() {
        let net: Network<String, String> = Network::instant(24);
        let _h = echo_server(&net, NodeId(0));
        let ep = net.endpoint(NodeId(1));
        net.kill(NodeId(0));
        let _ = ep.call(NodeId(0), "k".into(), TTL);
        net.revive(NodeId(0));
        net.partition_oneway(NodeId(1), NodeId(0));
        let _ = ep.call(NodeId(0), "p".into(), TTL);
        net.heal_all_partitions();
        net.set_flaky(NodeId(0), 0, 1); // drop everything, deterministically
        let _ = ep.call(NodeId(0), "f".into(), TTL);
        net.clear_flaky(NodeId(0));
        let s = net.stats();
        assert_eq!(s.dropped_killed, 1);
        assert_eq!(s.dropped_partition, 1);
        assert_eq!(s.dropped_link, 1);
        assert_eq!(
            s.dropped,
            s.dropped_killed + s.dropped_link + s.dropped_partition
        );
    }

    #[test]
    fn tracing_stamps_all_four_rpc_legs() {
        use crate::trace::TraceEventKind as K;
        let net: Network<String, String> = Network::instant(30);
        let tracer = net.enable_tracing();
        let _h = echo_server(&net, NodeId(0));
        let ep = net.endpoint(NodeId(1));
        ep.call(NodeId(0), "hi".into(), TTL).unwrap();
        let log = tracer.take();
        let clock_of = |want: fn(&K) -> bool| {
            log.iter()
                .find(|r| want(&r.kind))
                .expect("leg recorded")
                .clock
                .clone()
        };
        let send = clock_of(|k| matches!(k, K::MsgSend { .. }));
        let recv = clock_of(|k| matches!(k, K::MsgRecv { .. }));
        let rsend = clock_of(|k| matches!(k, K::ReplySend { .. }));
        let rrecv = clock_of(|k| matches!(k, K::ReplyRecv { .. }));
        assert!(send.happens_before(&recv));
        assert!(recv.happens_before(&rsend));
        assert!(rsend.happens_before(&rrecv));
        assert_eq!(log.len(), 4);
    }

    #[test]
    fn tracing_is_off_by_default_and_lost_sends_have_no_recv() {
        use crate::trace::TraceEventKind as K;
        let net: Network<String, String> = Network::instant(31);
        let _h = echo_server(&net, NodeId(0));
        let ep = net.endpoint(NodeId(1));
        assert!(net.tracer().is_none());
        ep.call(NodeId(0), "a".into(), TTL).unwrap();
        let tracer = net.enable_tracing();
        net.kill(NodeId(0));
        let _ = ep.call(NodeId(0), "b".into(), TTL);
        let log = tracer.take();
        assert_eq!(log.len(), 1, "only the send leg exists for a lost message");
        assert!(matches!(log[0].kind, K::MsgSend { to: NodeId(0) }));
    }

    #[test]
    fn attached_obs_sees_latencies_and_drops() {
        let net: Network<String, String> = Network::instant(40);
        let hub = ftc_obs::ObsHub::shared();
        net.attach_obs(&hub);
        let _h = echo_server(&net, NodeId(0));
        let ep = net.endpoint(NodeId(1));
        ep.call(NodeId(0), "a".into(), TTL).unwrap();
        ep.call(NodeId(0), "b".into(), TTL).unwrap();
        net.kill(NodeId(0));
        let _ = ep.call(NodeId(0), "c".into(), TTL);
        let ok = hub.registry.histogram("ftc_net_rpc_ok_us").snapshot();
        let to = hub.registry.histogram("ftc_net_rpc_timeout_us").snapshot();
        assert_eq!(ok.count, 2);
        assert_eq!(to.count, 1);
        assert!(
            to.min >= TTL.as_micros() as u64,
            "timeout latency must be at least the TTL"
        );
        // The drop and the timeout both left flight events.
        let dump = hub.flight.dump();
        assert!(dump.contains("drop"), "missing drop event: {dump}");
        assert!(
            dump.contains("rpc_timeout"),
            "missing timeout event: {dump}"
        );
        assert!(dump.contains("Killed"), "drop cause missing: {dump}");
    }

    #[test]
    fn virtual_clock_timeout_consumes_no_wall_time() {
        // A killed node charges the full TTL in *virtual* time; the wall
        // clock barely moves even for a multi-second deadline.
        let wall0 = Instant::now();
        ftc_time::with_virtual(|clock| {
            let net: Network<String, String> =
                Network::with_clock(LatencyModel::instant(), 3, clock.clone());
            let mbox = net.register(NodeId(0));
            let server = clock
                .spawn("srv0", move || {
                    while let Some(inc) = mbox.recv_timeout(Duration::from_millis(5)) {
                        let reply = format!("{}:{}", inc.from, inc.req);
                        inc.reply(reply);
                    }
                })
                .expect("spawn server");
            let ep = net.endpoint(NodeId(1));
            let ttl = Duration::from_secs(2);
            let t0 = clock.now();
            assert_eq!(ep.call(NodeId(0), "a".into(), ttl).expect("served"), "n1:a");
            net.kill(NodeId(0));
            let err = ep.call(NodeId(0), "b".into(), ttl).expect_err("killed");
            assert_eq!(err, RpcError::Timeout { to: NodeId(0) });
            assert!(clock.since(t0) >= ttl, "virtual TTL fully charged");
            // Let the server's 5ms poll lapse so its loop exits.
            server.join().expect("server clean");
        });
        assert!(
            wall0.elapsed() < Duration::from_secs(1),
            "2s virtual TTL must cost ≪ 1s wall"
        );
    }

    #[test]
    fn payload_wire_sizes() {
        assert_eq!(().wire_size(), 64);
        assert_eq!("abcd".to_string().wire_size(), 4);
        assert_eq!(vec![0u8; 10].wire_size(), 10);
        assert_eq!(bytes::Bytes::from_static(b"xyz").wire_size(), 3);
    }
}
