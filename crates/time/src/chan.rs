//! Clock-aware channels: the one blocking primitive the protocol stack
//! uses for cross-task handoff (transport mailboxes, reply slots, the
//! recovery queue, the data mover).
//!
//! Wall mode delegates to ordinary condvar-backed channels. Virtual mode
//! keeps the queue under a small per-channel mutex and routes *blocking*
//! through the scheduler: the receiver registers itself as the channel's
//! waiter and parks; a send (or the last sender's drop) takes the waiter
//! and wakes it. The channel lock is never held across a yield point, and
//! the scheduler lock is never taken while holding it in the waking
//! direction — the lock order is always channel → scheduler.
//!
//! Semantics mirror the workspace's `crossbeam` shim (whose error types
//! are re-used verbatim): unbounded FIFO, non-blocking sends, `send`
//! fails once the receiver is gone, `recv` fails once every sender is
//! gone and the queue is drained.

use crate::virt::VirtualClock;
use crossbeam::channel as cb;
use crossbeam::channel::{RecvError, RecvTimeoutError, SendError, TryRecvError};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

struct VState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
    /// Task id of a receiver parked on this channel.
    waiter: Option<usize>,
}

struct VChan<T> {
    state: Mutex<VState<T>>,
}

impl<T> VChan<T> {
    fn lock(&self) -> MutexGuard<'_, VState<T>> {
        // Queue operations are single push/pop writes; a poisoned lock
        // still holds a well-formed queue, so recover it.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }
}

enum SenderRepr<T> {
    Wall(cb::Sender<T>),
    Virtual {
        chan: Arc<VChan<T>>,
        clock: Arc<VirtualClock>,
    },
}

/// Sending half of a clock channel; cheap to clone.
pub struct ClockSender<T>(SenderRepr<T>);

enum ReceiverRepr<T> {
    Wall(cb::Receiver<T>),
    Virtual {
        chan: Arc<VChan<T>>,
        clock: Arc<VirtualClock>,
    },
}

/// Receiving half of a clock channel; blocking receives are scheduler
/// yield points in virtual mode.
pub struct ClockReceiver<T>(ReceiverRepr<T>);

pub(crate) fn wall_channel<T>() -> (ClockSender<T>, ClockReceiver<T>) {
    let (tx, rx) = cb::unbounded();
    (
        ClockSender(SenderRepr::Wall(tx)),
        ClockReceiver(ReceiverRepr::Wall(rx)),
    )
}

pub(crate) fn virtual_channel<T>(clock: Arc<VirtualClock>) -> (ClockSender<T>, ClockReceiver<T>) {
    let chan = Arc::new(VChan {
        state: Mutex::new(VState {
            queue: VecDeque::new(),
            senders: 1,
            receiver_alive: true,
            waiter: None,
        }),
    });
    (
        ClockSender(SenderRepr::Virtual {
            chan: Arc::clone(&chan),
            clock: Arc::clone(&clock),
        }),
        ClockReceiver(ReceiverRepr::Virtual { chan, clock }),
    )
}

impl<T> Clone for ClockSender<T> {
    fn clone(&self) -> Self {
        match &self.0 {
            SenderRepr::Wall(s) => ClockSender(SenderRepr::Wall(s.clone())),
            SenderRepr::Virtual { chan, clock } => {
                chan.lock().senders += 1;
                ClockSender(SenderRepr::Virtual {
                    chan: Arc::clone(chan),
                    clock: Arc::clone(clock),
                })
            }
        }
    }
}

impl<T> Drop for ClockSender<T> {
    fn drop(&mut self) {
        if let SenderRepr::Virtual { chan, clock } = &self.0 {
            let waiter = {
                let mut st = chan.lock();
                st.senders -= 1;
                if st.senders == 0 {
                    // Last sender gone: a parked receiver must wake to
                    // observe the disconnect.
                    st.waiter.take()
                } else {
                    None
                }
            };
            if let Some(w) = waiter {
                clock.wake(w);
            }
        }
    }
}

impl<T> Drop for ClockReceiver<T> {
    fn drop(&mut self) {
        if let ReceiverRepr::Virtual { chan, .. } = &self.0 {
            chan.lock().receiver_alive = false;
        }
    }
}

impl<T> ClockSender<T> {
    /// Enqueue `value`; fails iff the receiver is gone. Never blocks.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        match &self.0 {
            SenderRepr::Wall(s) => s.send(value),
            SenderRepr::Virtual { chan, clock } => {
                let waiter = {
                    let mut st = chan.lock();
                    if !st.receiver_alive {
                        return Err(SendError(value));
                    }
                    st.queue.push_back(value);
                    st.waiter.take()
                };
                if let Some(w) = waiter {
                    clock.wake(w);
                }
                Ok(())
            }
        }
    }
}

impl<T> ClockReceiver<T> {
    /// Queued message count.
    pub fn len(&self) -> usize {
        match &self.0 {
            ReceiverRepr::Wall(r) => r.len(),
            ReceiverRepr::Virtual { chan, .. } => chan.lock().queue.len(),
        }
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        match &self.0 {
            ReceiverRepr::Wall(r) => r.try_recv(),
            ReceiverRepr::Virtual { chan, .. } => {
                let mut st = chan.lock();
                match st.queue.pop_front() {
                    Some(v) => Ok(v),
                    None if st.senders == 0 => Err(TryRecvError::Disconnected),
                    None => Err(TryRecvError::Empty),
                }
            }
        }
    }

    /// Block until a message arrives or every sender disconnects.
    pub fn recv(&self) -> Result<T, RecvError> {
        match &self.0 {
            ReceiverRepr::Wall(r) => r.recv(),
            ReceiverRepr::Virtual { chan, clock } => loop {
                {
                    let mut st = chan.lock();
                    st.waiter = None;
                    if let Some(v) = st.queue.pop_front() {
                        return Ok(v);
                    }
                    if st.senders == 0 {
                        return Err(RecvError);
                    }
                    st.waiter = Some(clock.this_task());
                }
                clock.park(None);
            },
        }
    }

    /// Block with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        match &self.0 {
            ReceiverRepr::Wall(r) => r.recv_timeout(timeout),
            ReceiverRepr::Virtual { chan, clock } => {
                let deadline = clock.now_offset() + timeout;
                loop {
                    {
                        let mut st = chan.lock();
                        st.waiter = None;
                        if let Some(v) = st.queue.pop_front() {
                            return Ok(v);
                        }
                        if st.senders == 0 {
                            return Err(RecvTimeoutError::Disconnected);
                        }
                        // channel → scheduler lock order (see module docs).
                        if clock.now_offset() >= deadline {
                            return Err(RecvTimeoutError::Timeout);
                        }
                        st.waiter = Some(clock.this_task());
                    }
                    clock.park(Some(deadline));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_virtual;

    #[test]
    fn virtual_try_recv_and_len() {
        with_virtual(|clock| {
            let (tx, rx) = clock.channel();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            tx.send(1u8).expect("alive");
            tx.send(2u8).expect("alive");
            assert_eq!(rx.len(), 2);
            assert!(!rx.is_empty());
            assert_eq!(rx.try_recv(), Ok(1));
            drop(tx);
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        });
    }

    #[test]
    fn virtual_send_to_dropped_receiver_fails() {
        with_virtual(|clock| {
            let (tx, rx) = clock.channel::<u8>();
            drop(rx);
            assert_eq!(tx.send(9), Err(SendError(9)));
        });
    }

    #[test]
    fn virtual_clone_tracks_sender_count() {
        with_virtual(|clock| {
            let (tx, rx) = clock.channel::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(5).expect("alive");
            drop(tx2);
            assert_eq!(rx.recv(), Ok(5));
            assert_eq!(rx.recv(), Err(RecvError));
        });
    }

    #[test]
    fn virtual_recv_timeout_sees_message_sent_before_deadline() {
        with_virtual(|clock| {
            let (tx, rx) = clock.channel();
            let c = clock.clone();
            let h = clock
                .spawn("late-sender", move || {
                    c.sleep(Duration::from_millis(40));
                    tx.send(11u8).expect("alive");
                })
                .expect("spawn");
            assert_eq!(rx.recv_timeout(Duration::from_millis(100)), Ok(11));
            h.join().expect("clean");
        });
    }
}
