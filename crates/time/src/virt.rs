//! The virtual clock: simulated time plus a cooperative, deterministic
//! scheduler over real OS threads.
//!
//! ## Execution model
//!
//! Exactly one task holds the *run token* at any moment; every other task
//! thread is parked on its own condvar. A task releases the token only at
//! a **yield point** — `sleep`, a clock-channel receive, or a task join.
//! At a yield the task picks the next runnable task itself (FIFO ready
//! queue), hands over the token, and parks. When nothing is runnable,
//! virtual time jumps to the earliest pending timer (a binary heap keyed
//! by `(deadline, insertion-seq)` — the same earliest-first FIFO
//! tie-break as `ftc-sim`'s event queue) and the timer's task is made
//! runnable. Because the interleaving is chosen by this deterministic
//! discipline — never by the OS — two runs of the same seeded program
//! produce the same schedule, the same virtual timestamps, and the same
//! output bytes.
//!
//! ## Wakeups are level-triggered
//!
//! A wake (`make_ready`) on a task that is running or already runnable
//! just sets `wake_pending`; `park` consumes the flag and returns
//! immediately instead of blocking. Every blocking primitive is written
//! as a *condition loop* (check → register → park), so stale timer pops
//! and duplicate wakes are harmless: the task re-checks its condition and
//! re-parks. This is what makes lost-wakeup races impossible without a
//! global lock held across yields.
//!
//! ## Rules for code running under a virtual clock
//!
//! * Never hold a lock another task may need across a yield point — the
//!   scheduler cannot see OS mutexes, so that is a real deadlock.
//! * All blocking must go through the clock (sleep / clock channels /
//!   join). Blocking on anything else parks the whole simulated world.
//! * When every task is blocked and no timer is pending, the scheduler
//!   panics with a per-task diagnostic rather than hanging.

use crate::sched::{Choice, ScheduleTrace, Scheduler};
use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::Location;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

thread_local! {
    /// The task id this OS thread runs under, when parented to a
    /// `VirtualClock`.
    static CURRENT_TASK: Cell<Option<usize>> = const { Cell::new(None) };
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TaskState {
    /// Holds the run token.
    Running,
    /// In the ready queue, waiting for the token.
    Ready,
    /// Parked at a yield point.
    Blocked,
    /// Body returned (or unwound); never scheduled again.
    Finished,
}

struct Task {
    name: String,
    /// Source location of the `spawn` call that created this task —
    /// threaded through `#[track_caller]` so leak and deadlock
    /// diagnostics name the spawn site, not just the task.
    origin: &'static Location<'static>,
    state: TaskState,
    /// A wake arrived while the task was running or already ready; the
    /// next `park` returns immediately instead of blocking.
    wake_pending: bool,
    panicked: bool,
    cv: Arc<Condvar>,
    /// Tasks parked in `join_task` on this one.
    joiners: Vec<usize>,
}

struct Sched {
    /// Virtual elapsed time since `base`.
    now: Duration,
    tasks: Vec<Task>,
    ready: VecDeque<usize>,
    /// The task currently holding the run token.
    current: usize,
    /// Pending wakeups: `(deadline, insertion seq, task)`.
    timers: BinaryHeap<Reverse<(Duration, u64, usize)>>,
    timer_seq: u64,
    /// Installed schedule strategy (None = plain FIFO dispatch). Taken
    /// out of the slot for the duration of a `pick` call so the strategy
    /// can be consulted while the scheduler lock is held.
    strategy: Option<Box<dyn Scheduler>>,
    /// Recorded `(chosen, candidate count)` per choice point; only
    /// populated while a strategy is installed.
    trace: Vec<(u32, u32)>,
}

/// Simulated time driven by a cooperative scheduler. Construct via
/// [`with_virtual`]; share via [`crate::ClockHandle::from_virtual`].
pub struct VirtualClock {
    /// One real instant captured at creation; all fabricated instants are
    /// `base + virtual_elapsed`, so downstream `Instant` arithmetic works
    /// unchanged.
    base: Instant,
    sched: Mutex<Sched>,
}

/// The joined task panicked (virtual mode) or its thread panicked (wall
/// mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskPanicked;

impl std::fmt::Display for TaskPanicked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("joined task panicked")
    }
}

enum TaskRepr {
    Wall(std::thread::JoinHandle<()>),
    Virtual {
        clock: Arc<VirtualClock>,
        task: usize,
        os: std::thread::JoinHandle<()>,
    },
}

/// Handle to a worker spawned through a [`crate::ClockHandle`]; join is
/// clock-aware (a scheduler yield point in virtual mode).
pub struct TaskHandle(TaskRepr);

impl TaskHandle {
    pub(crate) fn wall(h: std::thread::JoinHandle<()>) -> Self {
        TaskHandle(TaskRepr::Wall(h))
    }

    /// Wait for the task to finish. In virtual mode this parks the caller
    /// as a scheduler yield point; in wall mode it is `JoinHandle::join`.
    pub fn join(self) -> Result<(), TaskPanicked> {
        match self.0 {
            TaskRepr::Wall(h) => h.join().map_err(|_panic_payload| TaskPanicked),
            TaskRepr::Virtual { clock, task, os } => {
                let r = clock.join_task(task);
                // The task is Finished; its OS thread is past all
                // scheduler interaction and exits immediately.
                let _ = os.join();
                r
            }
        }
    }
}

impl std::fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            TaskRepr::Wall(_) => f.write_str("TaskHandle(Wall)"),
            TaskRepr::Virtual { task, .. } => write!(f, "TaskHandle(Virtual#{task})"),
        }
    }
}

/// Ensures a spawned task always deregisters — even when its body
/// panics — so the scheduler hands the run token onward instead of
/// freezing the simulated world.
struct ExitGuard {
    clock: Arc<VirtualClock>,
    task: usize,
}

impl Drop for ExitGuard {
    fn drop(&mut self) {
        self.clock.task_exit(self.task, std::thread::panicking());
    }
}

impl VirtualClock {
    fn new(strategy: Option<Box<dyn Scheduler>>) -> Arc<Self> {
        Arc::new(VirtualClock {
            base: Instant::now(),
            sched: Mutex::new(Sched {
                now: Duration::ZERO,
                tasks: Vec::new(),
                ready: VecDeque::new(),
                current: 0,
                timers: BinaryHeap::new(),
                timer_seq: 0,
                strategy,
                trace: Vec::new(),
            }),
        })
    }

    fn lock(&self) -> MutexGuard<'_, Sched> {
        // Poisoning means some task panicked mid-update; scheduler state
        // transitions are single-field writes, so recover and keep
        // dispatching — the panic itself is reported via the exit guard.
        self.sched.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The fabricated current instant: `base + virtual elapsed`.
    pub fn now(&self) -> Instant {
        self.base + self.lock().now
    }

    /// Virtual elapsed time since clock creation.
    pub(crate) fn now_offset(&self) -> Duration {
        self.lock().now
    }

    /// The calling thread's task id; panics when called from a thread
    /// that is not parented to this clock (such a thread must never use
    /// blocking virtual primitives).
    pub(crate) fn this_task(&self) -> usize {
        let Some(id) = CURRENT_TASK.with(Cell::get) else {
            panic!("blocking virtual-clock call from a thread that is not a registered task");
        };
        id
    }

    /// Advance virtual time by sleeping until `now + d`.
    pub(crate) fn sleep(&self, d: Duration) {
        let deadline = self.lock().now + d;
        loop {
            if self.lock().now >= deadline {
                return;
            }
            self.park(Some(deadline));
        }
    }

    /// Yield the run token until woken (by `wake`, a timer at `wake_at`,
    /// or a stale wake — callers re-check their condition in a loop).
    pub(crate) fn park(&self, wake_at: Option<Duration>) {
        let me = self.this_task();
        let mut g = self.lock();
        debug_assert_eq!(g.current, me, "parking task must hold the run token");
        if g.tasks[me].wake_pending {
            g.tasks[me].wake_pending = false;
            return;
        }
        if let Some(at) = wake_at {
            let at = at.max(g.now);
            let seq = g.timer_seq;
            g.timer_seq += 1;
            g.timers.push(Reverse((at, seq, me)));
        }
        g.tasks[me].state = TaskState::Blocked;
        Self::dispatch(&mut g);
        g = Self::wait_for_token(g, me);
        g.tasks[me].state = TaskState::Running;
        g.tasks[me].wake_pending = false;
    }

    /// Make `tid` runnable (level-triggered; safe to call at any time,
    /// from any thread).
    pub(crate) fn wake(&self, tid: usize) {
        let mut g = self.lock();
        Self::make_ready(&mut g, tid);
    }

    fn wait_for_token(mut g: MutexGuard<'_, Sched>, me: usize) -> MutexGuard<'_, Sched> {
        while g.current != me {
            let cv = Arc::clone(&g.tasks[me].cv);
            g = cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        g
    }

    fn make_ready(g: &mut Sched, tid: usize) {
        let t = &mut g.tasks[tid];
        match t.state {
            TaskState::Blocked => {
                t.state = TaskState::Ready;
                t.wake_pending = true;
                g.ready.push_back(tid);
            }
            TaskState::Ready | TaskState::Running => t.wake_pending = true,
            TaskState::Finished => {}
        }
    }

    /// Hand the run token to the next runnable task, advancing virtual
    /// time over pending timers when nothing is ready. Panics (with a
    /// per-task diagnostic) when the simulated world can never progress.
    ///
    /// With a strategy installed, two things change: (1) when the ready
    /// queue drains, *every* timer sharing the earliest deadline is
    /// released together so same-instant wakeups form one choice point;
    /// (2) whenever more than one task is runnable, the strategy picks
    /// which runs and the `(chosen, count)` pair is recorded.
    fn dispatch(g: &mut Sched) {
        loop {
            if g.strategy.is_some() {
                if g.ready.is_empty() {
                    if let Some(&Reverse((at, _, _))) = g.timers.peek() {
                        if g.now < at {
                            g.now = at;
                        }
                        while let Some(&Reverse((t, _, tid))) = g.timers.peek() {
                            if t != at {
                                break;
                            }
                            let _ = g.timers.pop();
                            Self::make_ready(g, tid);
                        }
                        // Stale timers may have woken nobody; loop to
                        // either pick a task or drain the next deadline.
                        continue;
                    }
                } else {
                    let idx = if g.ready.len() > 1 {
                        Self::consult_strategy(g)
                    } else {
                        0
                    };
                    if let Some(next) = g.ready.remove(idx) {
                        g.current = next;
                        g.tasks[next].cv.notify_all();
                        return;
                    }
                }
            }
            if let Some(next) = g.ready.pop_front() {
                g.current = next;
                g.tasks[next].cv.notify_all();
                return;
            }
            if let Some(Reverse((at, _seq, tid))) = g.timers.pop() {
                if g.now < at {
                    g.now = at;
                }
                Self::make_ready(g, tid);
                continue;
            }
            let stuck: Vec<String> = g
                .tasks
                .iter()
                .enumerate()
                .filter(|(_, t)| t.state != TaskState::Finished)
                .map(|(i, t)| {
                    format!(
                        "  task {i} `{}` (spawned at {}): {:?}",
                        t.name, t.origin, t.state
                    )
                })
                .collect();
            let diag = format!(
                "virtual clock deadlock at t+{:?}: every task is blocked outside the \
                 clock and no timer is pending\n{}",
                g.now,
                stuck.join("\n")
            );
            if std::thread::panicking() {
                // Raised while a task unwinds (exit-guard path): a second
                // panic would abort without the message, so print first.
                eprintln!("{diag}");
                std::process::abort();
            }
            panic!("{diag}");
        }
    }

    /// Ask the installed strategy which ready-queue slot runs next.
    /// The strategy box is taken out of its slot for the call so the
    /// scheduler state stays borrowable; picks are clamped and recorded.
    fn consult_strategy(g: &mut Sched) -> usize {
        let Some(mut strategy) = g.strategy.take() else {
            return 0;
        };
        let candidates: Vec<usize> = g.ready.iter().copied().collect();
        let picked = strategy.pick(&Choice {
            candidates: &candidates,
            step: g.trace.len() as u64,
            now: g.now,
        });
        g.strategy = Some(strategy);
        let idx = picked.min(candidates.len() - 1);
        g.trace.push((idx as u32, candidates.len() as u32));
        idx
    }

    /// Spawn a cooperative task: a real OS thread that runs only while it
    /// holds the run token.
    #[track_caller]
    pub(crate) fn spawn(
        self: &Arc<Self>,
        name: &str,
        f: impl FnOnce() + Send + 'static,
    ) -> std::io::Result<TaskHandle> {
        let origin = Location::caller();
        let tid = {
            let mut g = self.lock();
            let tid = g.tasks.len();
            g.tasks.push(Task {
                name: name.to_owned(),
                origin,
                state: TaskState::Ready,
                wake_pending: false,
                panicked: false,
                cv: Arc::new(Condvar::new()),
                joiners: Vec::new(),
            });
            g.ready.push_back(tid);
            tid
        };
        let clock = Arc::clone(self);
        let os = std::thread::Builder::new()
            .name(name.to_owned())
            .spawn(move || {
                CURRENT_TASK.with(|c| c.set(Some(tid)));
                {
                    let g = clock.lock();
                    let mut g = Self::wait_for_token(g, tid);
                    g.tasks[tid].state = TaskState::Running;
                    g.tasks[tid].wake_pending = false;
                }
                let _exit = ExitGuard {
                    clock: Arc::clone(&clock),
                    task: tid,
                };
                f();
            })?;
        Ok(TaskHandle(TaskRepr::Virtual {
            clock: Arc::clone(self),
            task: tid,
            os,
        }))
    }

    fn task_exit(&self, tid: usize, panicked: bool) {
        let mut g = self.lock();
        g.tasks[tid].state = TaskState::Finished;
        g.tasks[tid].panicked = panicked;
        let joiners = std::mem::take(&mut g.tasks[tid].joiners);
        for j in joiners {
            Self::make_ready(&mut g, j);
        }
        Self::dispatch(&mut g);
    }

    /// Park until task `tid` finishes; returns whether it panicked.
    pub(crate) fn join_task(&self, tid: usize) -> Result<(), TaskPanicked> {
        let me = self.this_task();
        loop {
            {
                let mut g = self.lock();
                if g.tasks[tid].state == TaskState::Finished {
                    return if g.tasks[tid].panicked {
                        Err(TaskPanicked)
                    } else {
                        Ok(())
                    };
                }
                g.tasks[tid].joiners.push(me);
            }
            self.park(None);
        }
    }
}

/// Run `f` under a fresh virtual clock, with the calling thread
/// registered as the driver task. Everything `f` does — spawning
/// servers, running campaigns, reading through real clients — executes
/// cooperatively in simulated time; when `f` returns, every spawned task
/// must already be joined (a leak is a bug and panics, naming each
/// leaked task and the source location that spawned it).
#[track_caller]
pub fn with_virtual<R>(f: impl FnOnce(crate::ClockHandle) -> R) -> R {
    with_virtual_inner(None, f).0
}

/// [`with_virtual`] with a pluggable [`Scheduler`] strategy deciding
/// every choice point (>1 runnable task), plus simultaneity batching of
/// equal-deadline timers — see [`crate::sched`]. Returns `f`'s result
/// and the recorded [`ScheduleTrace`]; replaying the trace through
/// [`crate::sched::ForcedPrefix::replay`] reproduces the run
/// byte-identically.
#[track_caller]
pub fn with_virtual_sched<R>(
    strategy: Box<dyn Scheduler>,
    f: impl FnOnce(crate::ClockHandle) -> R,
) -> (R, ScheduleTrace) {
    with_virtual_inner(Some(strategy), f)
}

#[track_caller]
fn with_virtual_inner<R>(
    strategy: Option<Box<dyn Scheduler>>,
    f: impl FnOnce(crate::ClockHandle) -> R,
) -> (R, ScheduleTrace) {
    assert!(
        CURRENT_TASK.with(Cell::get).is_none(),
        "with_virtual cannot nest: this thread already drives a virtual clock"
    );
    let origin = Location::caller();
    let clock = VirtualClock::new(strategy);
    {
        let mut g = clock.lock();
        g.tasks.push(Task {
            name: "driver".to_owned(),
            origin,
            state: TaskState::Running,
            wake_pending: false,
            panicked: false,
            cv: Arc::new(Condvar::new()),
            joiners: Vec::new(),
        });
        g.current = 0;
    }
    CURRENT_TASK.with(|c| c.set(Some(0)));
    let result = f(crate::ClockHandle::from_virtual(Arc::clone(&clock)));
    CURRENT_TASK.with(|c| c.set(None));
    let (leaked, trace) = {
        let mut g = clock.lock();
        let leaked: Vec<String> = g
            .tasks
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, t)| t.state != TaskState::Finished)
            .map(|(i, t)| {
                format!(
                    "task {i} `{}` (spawned at {}): {:?}",
                    t.name, t.origin, t.state
                )
            })
            .collect();
        (
            leaked,
            ScheduleTrace {
                choices: std::mem::take(&mut g.trace),
            },
        )
    };
    assert!(
        leaked.is_empty(),
        "virtual tasks leaked past the driver (join them before returning): {}",
        leaked.join("; ")
    );
    (result, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClockHandle;

    #[test]
    fn timers_fire_in_deadline_then_fifo_order() {
        with_virtual(|clock| {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut hs = Vec::new();
            // Same deadline for all: insertion order must win.
            for i in 0..5u32 {
                let log = Arc::clone(&log);
                let c = clock.clone();
                hs.push(
                    clock
                        .spawn(&format!("t{i}"), move || {
                            c.sleep(Duration::from_millis(50));
                            log.lock().expect("log").push(i);
                        })
                        .expect("spawn"),
                );
            }
            for h in hs {
                h.join().expect("clean");
            }
            assert_eq!(*log.lock().expect("log"), vec![0, 1, 2, 3, 4]);
        });
    }

    #[test]
    fn join_propagates_task_panic() {
        // A panicking task must hand the token back (exit guard) and the
        // joiner must observe the panic instead of hanging.
        let err = with_virtual(|clock| {
            let h = clock
                .spawn("bomb", || {
                    let prev = std::panic::take_hook();
                    std::panic::set_hook(Box::new(|_| {})); // quiet the expected panic
                    let unwind =
                        std::panic::catch_unwind(|| panic!("boom")).expect_err("must panic");
                    std::panic::set_hook(prev);
                    std::panic::resume_unwind(unwind);
                })
                .expect("spawn");
            h.join()
        });
        assert_eq!(err, Err(TaskPanicked));
    }

    #[test]
    fn leak_panic_names_task_and_spawn_site() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // quiet the expected panic
        let err = std::panic::catch_unwind(|| {
            with_virtual(|clock| {
                // Never joined: the driver returns while the task still
                // waits for its first token grant.
                let _leaked = clock.spawn("lingerer", || {}).expect("spawn");
            });
        })
        .expect_err("a leaked task must panic the driver");
        std::panic::set_hook(prev);
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("leak assert carries a formatted message");
        assert!(
            msg.contains("`lingerer`"),
            "panic must name the leaked task: {msg}"
        );
        assert!(
            msg.contains("virt.rs"),
            "panic must carry the spawn-site location: {msg}"
        );
    }

    fn run_logged_sleepers(
        strategy: Box<dyn crate::sched::Scheduler>,
    ) -> (Vec<u32>, ScheduleTrace) {
        with_virtual_sched(strategy, |clock| {
            let log = Arc::new(Mutex::new(Vec::new()));
            let mut hs = Vec::new();
            for i in 0..4u32 {
                let log = Arc::clone(&log);
                let c = clock.clone();
                hs.push(
                    clock
                        .spawn(&format!("w{i}"), move || {
                            for _ in 0..3 {
                                c.sleep(Duration::from_millis(10));
                                log.lock().expect("log").push(i);
                            }
                        })
                        .expect("spawn"),
                );
            }
            for h in hs {
                h.join().expect("clean");
            }
            let v = log.lock().expect("log").clone();
            v
        })
    }

    #[test]
    fn strategy_runs_are_seed_deterministic_and_replayable() {
        use crate::sched::{ForcedPrefix, RandomWalk};
        let (a, ta) = run_logged_sleepers(Box::new(RandomWalk::new(42)));
        let (b, tb) = run_logged_sleepers(Box::new(RandomWalk::new(42)));
        assert_eq!(a, b, "same seed, same interleaving");
        assert_eq!(ta, tb, "same seed, same recorded schedule");
        assert!(
            !ta.is_empty(),
            "four same-deadline sleepers must hit choice points"
        );
        let (c, tc) = run_logged_sleepers(Box::new(ForcedPrefix::replay(&ta)));
        assert_eq!(c, a, "replaying the schedule reproduces the interleaving");
        assert_eq!(tc, ta, "replay re-records the identical schedule");
    }

    #[test]
    fn random_walk_reaches_interleavings_fifo_never_takes() {
        use crate::sched::RoundRobin;
        let (fifo, _) = run_logged_sleepers(Box::new(RoundRobin));
        let diverged = (1..16).any(|seed| {
            run_logged_sleepers(Box::new(crate::sched::RandomWalk::new(seed))).0 != fifo
        });
        assert!(
            diverged,
            "16 random walks over 4 racing sleepers must produce at least one non-FIFO order"
        );
    }

    #[test]
    fn nested_virtual_time_math_is_exact() {
        with_virtual(|clock: ClockHandle| {
            let t0 = clock.now();
            clock.sleep(Duration::from_nanos(1));
            clock.sleep(Duration::from_millis(7));
            clock.sleep(Duration::from_secs(2));
            assert_eq!(
                clock.since(t0),
                Duration::from_secs(2) + Duration::from_millis(7) + Duration::from_nanos(1)
            );
        });
    }
}
