//! Pluggable schedule strategies for the virtual-time driver.
//!
//! The cooperative driver in [`crate::virt`] serializes every task onto
//! one OS thread; whenever more than one task is runnable it must pick
//! which runs next. Plain [`crate::with_virtual`] always picks FIFO
//! (arrival order), which is what makes ordinary virtual runs
//! byte-identical. [`crate::with_virtual_sched`] instead delegates each
//! such **choice point** to a [`Scheduler`] strategy, turning the driver
//! into a systematic-concurrency-testing harness: the same real stack,
//! explored under many interleavings, each one recorded as a
//! [`ScheduleTrace`] that replays byte-identically via [`ForcedPrefix`].
//!
//! ## Simultaneity batches
//!
//! Under a strategy, every timer sharing the earliest pending deadline is
//! released *together* before the next pick, so tasks that wake at the
//! same virtual instant form one choice point instead of being replayed
//! in timer-registration order. (Plain `with_virtual` pops timers one at
//! a time; a strategy run — even [`RoundRobin`] — may therefore order
//! same-instant wakeups differently from a plain run. Each mode is
//! individually deterministic; traces are only comparable within a mode.)
//!
//! ## What a choice point is (and is not)
//!
//! Choice points are **cooperative yields** — `sleep`, clock-channel
//! receives, joins, task exit. The explorer permutes runnable tasks at
//! those boundaries; it does *not* inject instruction-level preemptions
//! inside a critical section the way a preemption-bounded model checker
//! over raw threads would. PCT priorities and change points below are
//! therefore PCT-style over yield granularity, which matches the
//! codebase rule that all blocking goes through the clock.

use std::time::Duration;

/// Everything a strategy sees at one choice point.
pub struct Choice<'a> {
    /// Runnable task ids, FIFO arrival order, always `len() >= 2`.
    pub candidates: &'a [usize],
    /// Ordinal of this choice point within the run (0-based).
    pub step: u64,
    /// Current virtual time.
    pub now: Duration,
}

/// A schedule strategy: picks which runnable task gets the token at each
/// choice point. Implementations must be deterministic functions of
/// their construction parameters and the observed choice sequence —
/// that is what makes recorded schedules replayable.
pub trait Scheduler: Send {
    /// Return an index into `choice.candidates`. Out-of-range picks are
    /// clamped by the driver (a replay that diverged still progresses).
    fn pick(&mut self, choice: &Choice<'_>) -> usize;
}

/// One recorded run: for every choice point, which candidate index was
/// taken and how many candidates there were. The candidate count lets a
/// replay detect divergence and lets a DFS driver enumerate untried
/// siblings.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// `(chosen index, candidate count)` per choice point, in order.
    pub choices: Vec<(u32, u32)>,
}

impl ScheduleTrace {
    /// Number of choice points in the run.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// True when the run never had more than one runnable task.
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }

    /// Compact `chosen/of` rendering, e.g. `"1/3 0/2"`.
    pub fn render(&self) -> String {
        self.choices
            .iter()
            .map(|(c, n)| format!("{c}/{n}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// FIFO pick — the same arrival-order discipline plain `with_virtual`
/// uses (modulo simultaneity batching, see the module docs). The
/// baseline strategy and the tail behavior of [`ForcedPrefix`].
#[derive(Debug, Default)]
pub struct RoundRobin;

impl Scheduler for RoundRobin {
    fn pick(&mut self, _choice: &Choice<'_>) -> usize {
        0
    }
}

/// SplitMix64 — the same tiny seeded generator the chaos harness uses,
/// duplicated here because `ftc-time` sits below every other crate.
#[derive(Debug, Clone)]
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Seeded uniform random walk over the schedule tree: every choice point
/// picks a uniformly random runnable task. Cheap, surprisingly
/// effective at shaking out ordering bugs, and fully reproducible from
/// the seed.
#[derive(Debug)]
pub struct RandomWalk {
    rng: SplitMix64,
}

impl RandomWalk {
    /// A walk determined entirely by `seed`.
    pub fn new(seed: u64) -> Self {
        RandomWalk {
            rng: SplitMix64(seed),
        }
    }
}

impl Scheduler for RandomWalk {
    fn pick(&mut self, choice: &Choice<'_>) -> usize {
        self.rng.below(choice.candidates.len())
    }
}

/// PCT-style priority scheduler (Burckhardt et al., ASPLOS'10) over
/// yield granularity: every task gets a random high priority at first
/// sight; each choice point runs the highest-priority runnable task; at
/// `d` pre-drawn change points (choice-step ordinals within `horizon`)
/// the task just chosen is demoted below every initial priority. With
/// enough seeds this finds any bug of priority-inversion depth ≤ d with
/// known probability bounds — here the bound is over yield-point
/// schedules, not raw instruction interleavings.
#[derive(Debug)]
pub struct Pct {
    rng: SplitMix64,
    /// Priority per task id (indexed, grown on demand). Initial values
    /// are ≥ `d`, demoted values are `0..d` (lower runs later).
    prio: Vec<u64>,
    /// Choice-step ordinals at which to demote, descending demoted
    /// priority (`d`, `d-1`, …, `1`).
    change_points: Vec<u64>,
    next_demotion: usize,
}

impl Pct {
    /// A PCT schedule with `d` priority change points spread over an
    /// expected `horizon` choice points, all drawn from `seed`.
    pub fn new(seed: u64, d: usize, horizon: u64) -> Self {
        let mut rng = SplitMix64(seed);
        let mut change_points: Vec<u64> = (0..d).map(|_| rng.next() % horizon.max(1)).collect();
        change_points.sort_unstable();
        change_points.dedup();
        Pct {
            rng,
            prio: Vec::new(),
            change_points,
            next_demotion: 0,
        }
    }

    fn prio_of(&mut self, tid: usize) -> u64 {
        while self.prio.len() <= tid {
            // Initial priorities sit strictly above every demoted value;
            // `| 1 << 32` keeps them out of the demotion range [1, d].
            let p = self.rng.next() | (1 << 32);
            self.prio.push(p);
        }
        self.prio[tid]
    }
}

impl Scheduler for Pct {
    fn pick(&mut self, choice: &Choice<'_>) -> usize {
        let mut best = 0usize;
        let mut best_prio = 0u64;
        for (i, &tid) in choice.candidates.iter().enumerate() {
            let p = self.prio_of(tid);
            if i == 0 || p > best_prio {
                best = i;
                best_prio = p;
            }
        }
        if self
            .change_points
            .get(self.next_demotion)
            .is_some_and(|&cp| choice.step >= cp)
        {
            // Demote the task we are about to run; remaining demotions
            // use successively lower floor values so relative order among
            // demoted tasks stays deterministic.
            let demoted = (self.change_points.len() - self.next_demotion) as u64;
            let tid = choice.candidates[best];
            self.prio_of(tid);
            self.prio[tid] = demoted;
            self.next_demotion += 1;
        }
        best
    }
}

/// Replay / DFS-prefix strategy: follow `prefix` exactly, then fall back
/// to FIFO (index 0). A bounded-DFS driver re-runs the system with
/// successively longer prefixes to enumerate the schedule tree; a full
/// recorded trace used as the prefix replays that run byte-identically.
#[derive(Debug)]
pub struct ForcedPrefix {
    prefix: Vec<u32>,
    at: usize,
    /// Set when a prefix entry was out of range for the candidates
    /// actually runnable — the replayed program differs from the
    /// recorded one.
    diverged: bool,
}

impl ForcedPrefix {
    /// Follow `prefix` (candidate indices, one per choice point), FIFO
    /// afterwards.
    pub fn new(prefix: Vec<u32>) -> Self {
        ForcedPrefix {
            prefix,
            at: 0,
            diverged: false,
        }
    }

    /// Replay a previously recorded trace.
    pub fn replay(trace: &ScheduleTrace) -> Self {
        Self::new(trace.choices.iter().map(|&(c, _)| c).collect())
    }

    /// True once any prefix entry failed to match the live run.
    pub fn diverged(&self) -> bool {
        self.diverged
    }
}

impl Scheduler for ForcedPrefix {
    fn pick(&mut self, choice: &Choice<'_>) -> usize {
        let Some(&want) = self.prefix.get(self.at) else {
            return 0;
        };
        self.at += 1;
        if (want as usize) < choice.candidates.len() {
            want as usize
        } else {
            self.diverged = true;
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn choice(cands: &[usize], step: u64) -> Choice<'_> {
        Choice {
            candidates: cands,
            step,
            now: Duration::ZERO,
        }
    }

    #[test]
    fn random_walk_is_seed_deterministic() {
        let cands = [3usize, 5, 7, 9];
        let picks = |seed| {
            let mut s = RandomWalk::new(seed);
            (0..32)
                .map(|i| s.pick(&choice(&cands, i)))
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8), "different seeds should diverge");
        assert!(picks(7).iter().all(|&i| i < cands.len()));
    }

    #[test]
    fn pct_runs_highest_priority_until_demoted() {
        let mut s = Pct::new(1, 1, 4);
        let cands = [1usize, 2];
        let first = s.pick(&choice(&cands, 0));
        // Same candidates, later steps: after the single change point
        // fires the previously-favored task must have been demoted, so
        // the pick flips to the other candidate and stays there.
        let mut later = Vec::new();
        for step in 1..8 {
            later.push(s.pick(&choice(&cands, step)));
        }
        assert!(
            later.iter().any(|&p| p != first),
            "one change point must flip the winner: first={first}, later={later:?}"
        );
        let tail = later[later.len() - 3..].to_vec();
        assert!(
            tail.iter().all(|&p| p == tail[0]),
            "priorities are stable once all change points fired: {later:?}"
        );
    }

    #[test]
    fn forced_prefix_replays_then_fifo_and_flags_divergence() {
        let mut s = ForcedPrefix::new(vec![1, 0, 5]);
        let cands = [10usize, 11, 12];
        assert_eq!(s.pick(&choice(&cands, 0)), 1);
        assert_eq!(s.pick(&choice(&cands, 1)), 0);
        assert!(!s.diverged());
        // Prefix entry 5 is out of range for 3 candidates: fall back to
        // FIFO and mark divergence rather than panicking mid-replay.
        assert_eq!(s.pick(&choice(&cands, 2)), 0);
        assert!(s.diverged());
        // Past the prefix: FIFO.
        assert_eq!(s.pick(&choice(&cands, 3)), 0);
    }

    #[test]
    fn schedule_trace_renders_compactly() {
        let t = ScheduleTrace {
            choices: vec![(1, 3), (0, 2)],
        };
        assert_eq!(t.render(), "1/3 0/2");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }
}
