//! # ftc-time — the workspace's single source of time
//!
//! Every layer of FT-Cache that waits, retries, times out, or stamps an
//! event does so through this crate. There are exactly two behaviours
//! behind one handle:
//!
//! * **Wall mode** (`ClockHandle::wall()`): `now()` is `Instant::now()`,
//!   `sleep()` is `thread::sleep`, channels are ordinary blocking
//!   channels, `spawn` is `thread::spawn`. Threaded clusters behave
//!   exactly as they did before this crate existed.
//! * **Virtual mode** ([`with_virtual`]): `now()` is a simulated instant,
//!   `sleep()` advances simulated time, and every blocking primitive is a
//!   *yield point* of a cooperative single-token scheduler. Real OS
//!   threads still exist (the protocol code is unchanged), but exactly
//!   one runs at a time and the interleaving is a deterministic function
//!   of the program: same seed in ⇒ byte-identical trace out, and a
//!   campaign that waits out seconds of detector windows finishes in
//!   milliseconds of wall time.
//!
//! The deal the rest of the workspace signs up to (enforced by the
//! `wall-clock` repo lint): protocol crates never call `Instant::now()`,
//! `SystemTime::now()`, `thread::sleep`, or `Instant::elapsed()`
//! directly — they take a [`ClockHandle`] and ask it. In exchange, the
//! whole stack — transport latency, retry backoff, detector windows,
//! recovery pacing, observability stamps — runs unmodified under either
//! clock.
//!
//! ## Why an enum handle and not `Arc<dyn Clock>`
//!
//! Channels need a generic constructor (`clock.channel::<T>()`), which a
//! trait object cannot offer. [`ClockHandle`] is therefore a two-variant
//! enum with inlineable wall-mode fast paths; the [`Clock`] trait is
//! still provided for code that only needs `now`/`sleep`/`deadline`.
//!
//! ## How virtual instants stay compatible
//!
//! [`VirtualClock`] captures one real `Instant` at creation and fabricates
//! `base + virtual_elapsed`. All downstream `Instant` arithmetic
//! (`duration_since`, ordering, heaps of deadlines) keeps working on
//! fabricated instants without modification — only *producing* "now" and
//! *waiting* are intercepted.

#![warn(missing_docs)]

mod chan;
pub mod sched;
mod virt;

pub use chan::{ClockReceiver, ClockSender};
pub use crossbeam::channel::{RecvError, RecvTimeoutError, SendError, TryRecvError};
pub use sched::{Choice, ForcedPrefix, Pct, RandomWalk, RoundRobin, ScheduleTrace, Scheduler};
pub use virt::{with_virtual, with_virtual_sched, TaskHandle, TaskPanicked, VirtualClock};

use std::sync::Arc;
use std::time::{Duration, Instant};

/// The minimal time interface: code that only reads the clock and sleeps
/// can take `&impl Clock` instead of a full [`ClockHandle`].
pub trait Clock {
    /// The current instant (wall or fabricated-virtual).
    fn now(&self) -> Instant;
    /// Block (wall) or yield-and-advance (virtual) for `d`.
    fn sleep(&self, d: Duration);
    /// `now() + d`, the common deadline idiom.
    fn deadline(&self, d: Duration) -> Instant {
        self.now() + d
    }
}

#[derive(Clone, Default)]
enum Repr {
    #[default]
    Wall,
    Virtual(Arc<VirtualClock>),
}

/// A cheap-to-clone handle to either the wall clock or a virtual clock.
///
/// This is the type threaded through every layer: transport, client,
/// server, detector, recovery engine, mover, observability. `Default` is
/// wall mode, so existing constructors keep their behaviour.
#[derive(Clone, Default)]
pub struct ClockHandle(Repr);

impl std::fmt::Debug for ClockHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Repr::Wall => f.write_str("ClockHandle(Wall)"),
            Repr::Virtual(_) => f.write_str("ClockHandle(Virtual)"),
        }
    }
}

impl ClockHandle {
    /// The wall clock: real time, real blocking.
    pub fn wall() -> Self {
        ClockHandle(Repr::Wall)
    }

    /// A handle onto an existing virtual clock (normally obtained via
    /// [`with_virtual`], which also registers the driver task).
    pub fn from_virtual(clock: Arc<VirtualClock>) -> Self {
        ClockHandle(Repr::Virtual(clock))
    }

    /// True when this handle drives simulated time.
    pub fn is_virtual(&self) -> bool {
        matches!(self.0, Repr::Virtual(_))
    }

    /// The current instant.
    pub fn now(&self) -> Instant {
        match &self.0 {
            Repr::Wall => Instant::now(),
            Repr::Virtual(v) => v.now(),
        }
    }

    /// Duration since an earlier instant taken from the *same* clock.
    /// The clock-aware spelling of `Instant::elapsed`, which secretly
    /// reads the wall clock and is therefore banned in protocol crates.
    pub fn since(&self, earlier: Instant) -> Duration {
        self.now().saturating_duration_since(earlier)
    }

    /// Sleep for `d`: real blocking in wall mode, a deterministic yield
    /// that advances simulated time in virtual mode.
    pub fn sleep(&self, d: Duration) {
        match &self.0 {
            Repr::Wall => std::thread::sleep(d),
            Repr::Virtual(v) => v.sleep(d),
        }
    }

    /// `now() + d`.
    pub fn deadline(&self, d: Duration) -> Instant {
        self.now() + d
    }

    /// Poll `pred` every `poll` until it returns true or `timeout`
    /// expires. Returns whether the condition was met. This is the
    /// settle-wait replacement for bare `thread::sleep(50ms)` guesses:
    /// in wall mode it converges as soon as the condition holds; in
    /// virtual mode it is deterministic and nearly free.
    pub fn wait_until(
        &self,
        timeout: Duration,
        poll: Duration,
        mut pred: impl FnMut() -> bool,
    ) -> bool {
        let deadline = self.now() + timeout;
        loop {
            if pred() {
                return true;
            }
            if self.now() >= deadline {
                return false;
            }
            self.sleep(poll);
        }
    }

    /// An unbounded FIFO channel whose blocking receives are clock-aware:
    /// ordinary condvar blocking in wall mode, scheduler yield points in
    /// virtual mode.
    pub fn channel<T>(&self) -> (ClockSender<T>, ClockReceiver<T>) {
        match &self.0 {
            Repr::Wall => chan::wall_channel(),
            Repr::Virtual(v) => chan::virtual_channel(Arc::clone(v)),
        }
    }

    /// Spawn a named worker. Wall mode: a plain OS thread. Virtual mode:
    /// an OS thread registered as a cooperative task — it runs only when
    /// scheduled and must block exclusively through this clock (sleep,
    /// clock channels, join). Returns the OS error if thread creation
    /// fails.
    #[track_caller]
    pub fn spawn(
        &self,
        name: &str,
        f: impl FnOnce() + Send + 'static,
    ) -> std::io::Result<TaskHandle> {
        match &self.0 {
            Repr::Wall => std::thread::Builder::new()
                .name(name.to_owned())
                .spawn(f)
                .map(TaskHandle::wall),
            Repr::Virtual(v) => v.spawn(name, f),
        }
    }
}

impl Clock for ClockHandle {
    fn now(&self) -> Instant {
        ClockHandle::now(self)
    }
    fn sleep(&self, d: Duration) {
        ClockHandle::sleep(self, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_now_advances() {
        let c = ClockHandle::wall();
        let a = c.now();
        std::thread::sleep(Duration::from_millis(2));
        assert!(c.since(a) >= Duration::from_millis(2));
        assert!(!c.is_virtual());
    }

    #[test]
    fn wall_wait_until_converges() {
        let c = ClockHandle::wall();
        let t0 = c.now();
        assert!(
            c.wait_until(Duration::from_secs(1), Duration::from_millis(1), || {
                c.since(t0) >= Duration::from_millis(5)
            })
        );
        assert!(
            !c.wait_until(Duration::from_millis(10), Duration::from_millis(1), || {
                false
            })
        );
    }

    #[test]
    fn wall_channel_round_trip() {
        let c = ClockHandle::wall();
        let (tx, rx) = c.channel();
        let h = c
            .spawn("tx", move || tx.send(7u32).expect("receiver alive"))
            .expect("spawn");
        assert_eq!(rx.recv(), Ok(7));
        h.join().expect("worker clean");
    }

    #[test]
    fn virtual_sleep_advances_instantly() {
        let wall0 = Instant::now();
        with_virtual(|clock| {
            let t0 = clock.now();
            clock.sleep(Duration::from_secs(3600));
            assert!(clock.since(t0) >= Duration::from_secs(3600));
        });
        assert!(
            wall0.elapsed() < Duration::from_secs(5),
            "virtual hour ≪ wall 5s"
        );
    }

    #[test]
    fn virtual_spawn_and_join_interleave_deterministically() {
        let order = with_virtual(|clock| {
            let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
            let mut handles = Vec::new();
            for i in 0..4u32 {
                let log = std::sync::Arc::clone(&log);
                let c = clock.clone();
                handles.push(
                    c.clone()
                        .spawn(&format!("w{i}"), move || {
                            c.sleep(Duration::from_millis(u64::from(10 - i)));
                            log.lock().expect("log").push(i);
                        })
                        .expect("spawn"),
                );
            }
            for h in handles {
                h.join().expect("task clean");
            }
            let got = log.lock().expect("log").clone();
            got
        });
        // Shorter virtual sleeps finish first, regardless of OS scheduling.
        assert_eq!(order, vec![3, 2, 1, 0]);
    }

    #[test]
    fn virtual_channel_blocks_and_wakes_in_virtual_time() {
        with_virtual(|clock| {
            let (tx, rx) = clock.channel();
            let c = clock.clone();
            let h = clock
                .spawn("producer", move || {
                    c.sleep(Duration::from_millis(250));
                    tx.send(42u64).expect("receiver alive");
                })
                .expect("spawn");
            let t0 = clock.now();
            assert_eq!(rx.recv(), Ok(42));
            assert!(clock.since(t0) >= Duration::from_millis(250));
            h.join().expect("producer clean");
        });
    }

    #[test]
    fn virtual_recv_timeout_times_out_at_the_deadline() {
        with_virtual(|clock| {
            let (tx, rx) = clock.channel::<u8>();
            let t0 = clock.now();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(75)),
                Err(RecvTimeoutError::Timeout)
            );
            assert_eq!(clock.since(t0), Duration::from_millis(75));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        });
    }

    #[test]
    fn virtual_sender_drop_unblocks_receiver() {
        with_virtual(|clock| {
            let (tx, rx) = clock.channel::<u8>();
            let c = clock.clone();
            let h = clock
                .spawn("dropper", move || {
                    c.sleep(Duration::from_millis(30));
                    drop(tx);
                })
                .expect("spawn");
            assert_eq!(rx.recv(), Err(RecvError));
            h.join().expect("dropper clean");
        });
    }

    #[test]
    fn virtual_runs_are_reproducible() {
        fn run() -> Vec<(u32, Duration)> {
            with_virtual(|clock| {
                let (tx, rx) = clock.channel();
                let mut handles = Vec::new();
                for i in 0..8u32 {
                    let tx = tx.clone();
                    let c = clock.clone();
                    handles.push(
                        c.clone()
                            .spawn(&format!("w{i}"), move || {
                                c.sleep(Duration::from_millis(u64::from((i * 37) % 11)));
                                tx.send(i).expect("rx");
                            })
                            .expect("spawn"),
                    );
                }
                drop(tx);
                let origin = clock.now();
                let mut log = Vec::new();
                while let Ok(i) = rx.recv() {
                    log.push((i, clock.since(origin)));
                }
                for h in handles {
                    h.join().expect("clean");
                }
                log
            })
        }
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn virtual_deadlock_panics_with_diagnostics() {
        with_virtual(|clock| {
            let (_tx, rx) = clock.channel::<u8>();
            // _tx is still alive, no timer pending: recv can never complete.
            let _ = rx.recv();
        });
    }
}
