//! # ftc-obs — the observability plane for FT-Cache
//!
//! FT-Cache's headline result is a *time* claim: the 24.9 % cut in
//! post-failure training time comes from shrinking the degraded window
//! between a node's death and steady-state recached serving. Flat event
//! counters cannot measure that — this crate provides the instruments
//! that can, with zero dependencies so every other crate in the workspace
//! may depend on it:
//!
//! - [`Histogram`] / [`HistogramSnapshot`] — lock-free log-bucketed
//!   HDR-style latency histograms; wait-free `record`, mergeable
//!   snapshots, quantile queries with ≤ 1/32 relative error.
//! - [`Registry`] — named counters / gauges / histograms; registration
//!   locks once, every update after that is a single atomic op.
//! - [`TimelineRecorder`] — stamps the per-failure phase transitions
//!   (kill → first timeout → suspect → declare → ring update → first
//!   recached hit) and derives detection / recovery latency
//!   distributions: the paper's Fig.-level observable.
//! - [`FlightRecorder`] — a bounded ring of recent structured events,
//!   dumped when a chaos invariant fires or a test panics, so a red
//!   campaign ships its own black-box transcript.
//! - [`Export`] + [`render_prometheus`] / [`render_json`] — one sample
//!   model, two wire formats, covering both the registry and the legacy
//!   flat snapshots (`ClientMetrics`, `NetStats`, `NvmeStats`).
//!
//! The three instruments travel together as an [`ObsHub`]: the cluster
//! owns one, hands an `Arc` to every client/server/injector, and the
//! chaos harness snapshots it into campaign reports.
//!
//! ```
//! use ftc_obs::{ObsHub, Phase, render_prometheus, Export};
//!
//! let hub = ObsHub::new();
//! hub.registry.counter("ftc_reads_total").inc();
//! hub.registry.histogram("ftc_read_us").record(420);
//! hub.timeline.mark(3, Phase::Kill);
//! hub.flight.record("chaos", "kill", "n3");
//! let text = render_prometheus(&hub.registry.export());
//! assert!(text.contains("ftc_reads_total 1"));
//! ```

#![warn(missing_docs)]

mod export;
mod flight;
mod hist;
mod registry;
mod timeline;

pub use export::{render_json, render_prometheus, Export, Sample, Value};
pub use flight::{FlightEvent, FlightRecorder};
pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{Counter, Gauge, Registry};
pub use timeline::{nearest_rank, percentile, Incident, Phase, PolicyChanged, TimelineRecorder};

use std::sync::Arc;

/// The three instruments of one observed system, shared as a unit.
///
/// One hub per cluster (or per chaos campaign): clients record metrics
/// and stamp timeline phases, injectors stamp kills, every layer appends
/// flight events, and the report/exposition side snapshots all three.
#[derive(Debug, Default)]
pub struct ObsHub {
    /// Named metrics (counters, gauges, histograms).
    pub registry: Registry,
    /// Degraded-window phase stamps per failure incident.
    pub timeline: TimelineRecorder,
    /// Recent structured events, bounded.
    pub flight: FlightRecorder,
}

impl ObsHub {
    /// A fresh hub with default-capacity flight recorder.
    pub fn new() -> Self {
        ObsHub::default()
    }

    /// A fresh hub whose timeline and flight recorder stamp through
    /// `clock` — under a virtual clock, every offset in the report is a
    /// deterministic function of the schedule, not of wall-time noise.
    pub fn with_clock(clock: ftc_time::ClockHandle) -> Self {
        ObsHub {
            registry: Registry::default(),
            timeline: TimelineRecorder::with_clock(clock.clone()),
            flight: FlightRecorder::with_clock(FlightRecorder::DEFAULT_CAPACITY, clock),
        }
    }

    /// A fresh hub behind an `Arc`, ready to hand to cluster components.
    pub fn shared() -> Arc<Self> {
        Arc::new(ObsHub::new())
    }

    /// [`ObsHub::with_clock`] behind an `Arc`.
    pub fn shared_with_clock(clock: ftc_time::ClockHandle) -> Arc<Self> {
        Arc::new(ObsHub::with_clock(clock))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_instruments_are_independent() {
        let hub = ObsHub::shared();
        hub.registry.counter("a_total").inc();
        hub.timeline.mark(1, Phase::Kill);
        hub.flight.record("t", "k", "d");
        assert_eq!(hub.registry.counter("a_total").get(), 1);
        assert_eq!(hub.timeline.incidents().len(), 1);
        assert_eq!(hub.flight.len(), 1);
    }
}
