//! The degraded-window timeline — the paper's headline observable.
//!
//! FT-Cache's 24.9 % training-time claim is about how *short* the window
//! between a node's death and steady-state recached serving can be made.
//! This recorder stamps the phase transitions of each failure incident:
//!
//! ```text
//! kill ──▶ first timeout ──▶ suspect ──▶ declare ──▶ ring update ──▶ first recached hit
//!      └────────── detection latency ──────────┘
//!      └──────────────────────── recovery latency ─────────────────────────────────┘
//! ```
//!
//! The injector (chaos harness, test, operator) stamps `Kill`; the client
//! stamps everything downstream as its detector and placement react. Each
//! phase is recorded at its *first* occurrence per incident, and a new
//! `Kill` for a node whose previous incident completed opens a fresh
//! incident, so revive → re-kill sequences yield one measurement each.
//!
//! Derived outputs: per-incident phase offsets, and detection / recovery
//! latency lists ready for percentile treatment across campaigns.

use ftc_time::ClockHandle;
use std::collections::HashMap;
use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Phases of one failure incident, in causal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// The node was killed (stamped by the fault injector).
    Kill,
    /// First RPC timeout observed against the node.
    FirstTimeout,
    /// Detector moved the node into the suspect window.
    Suspect,
    /// Detector declared the node failed.
    Declare,
    /// The placement dropped the node (ring epoch bump).
    RingUpdate,
    /// The recovery engine began proactively recaching the node's lost
    /// keys onto their new owners (absent under lazy recaching).
    RecoveryStart,
    /// First read of a key the node owned served from a survivor's cache
    /// tier — steady-state recached serving has begun.
    FirstRecachedHit,
    /// The recovery engine drained every recache/hint job for this
    /// incident — recovery traffic has quiesced (absent under lazy
    /// recaching).
    RecoveryQuiesced,
}

impl Phase {
    /// All phases, causal order.
    pub const ALL: [Phase; 8] = [
        Phase::Kill,
        Phase::FirstTimeout,
        Phase::Suspect,
        Phase::Declare,
        Phase::RingUpdate,
        Phase::RecoveryStart,
        Phase::FirstRecachedHit,
        Phase::RecoveryQuiesced,
    ];

    /// The phases every fault-tolerant path stamps, proactive recovery
    /// engine or not — the lazy degraded-window skeleton.
    pub const LAZY: [Phase; 6] = [
        Phase::Kill,
        Phase::FirstTimeout,
        Phase::Suspect,
        Phase::Declare,
        Phase::RingUpdate,
        Phase::FirstRecachedHit,
    ];

    fn idx(self) -> usize {
        match self {
            Phase::Kill => 0,
            Phase::FirstTimeout => 1,
            Phase::Suspect => 2,
            Phase::Declare => 3,
            Phase::RingUpdate => 4,
            Phase::RecoveryStart => 5,
            Phase::FirstRecachedHit => 6,
            Phase::RecoveryQuiesced => 7,
        }
    }

    /// Short label used in dumps and reports.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Kill => "kill",
            Phase::FirstTimeout => "first_timeout",
            Phase::Suspect => "suspect",
            Phase::Declare => "declare",
            Phase::RingUpdate => "ring_update",
            Phase::RecoveryStart => "recovery_start",
            Phase::FirstRecachedHit => "first_recached_hit",
            Phase::RecoveryQuiesced => "recovery_quiesced",
        }
    }
}

/// One failure incident: a node id plus first-occurrence stamps (offsets
/// from the recorder's origin) for each phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Incident {
    /// The failed node (raw id — the recorder does not depend on
    /// `ftc-hashring`).
    pub node: u32,
    /// Phase offsets from the recorder origin; `None` = never reached.
    stamps: [Option<Duration>; 8],
}

impl Incident {
    fn new(node: u32) -> Self {
        Incident {
            node,
            stamps: [None; 8],
        }
    }

    /// Offset of `phase` from the recorder origin, if reached.
    pub fn stamp(&self, phase: Phase) -> Option<Duration> {
        self.stamps[phase.idx()]
    }

    /// Time from `Kill` to `Declare` — how long the failure went
    /// undetected.
    pub fn detection_latency(&self) -> Option<Duration> {
        Some(
            self.stamp(Phase::Declare)?
                .saturating_sub(self.stamp(Phase::Kill)?),
        )
    }

    /// Time from `Kill` to `FirstRecachedHit` — the full degraded window.
    pub fn recovery_latency(&self) -> Option<Duration> {
        Some(
            self.stamp(Phase::FirstRecachedHit)?
                .saturating_sub(self.stamp(Phase::Kill)?),
        )
    }

    /// Time from `Kill` to `RecoveryQuiesced` — how long recovery traffic
    /// kept flowing. Only proactive-recovery incidents have this.
    pub fn quiesce_latency(&self) -> Option<Duration> {
        Some(
            self.stamp(Phase::RecoveryQuiesced)?
                .saturating_sub(self.stamp(Phase::Kill)?),
        )
    }

    /// An incident is complete once recached serving resumed.
    pub fn is_complete(&self) -> bool {
        self.stamp(Phase::FirstRecachedHit).is_some()
    }
}

impl fmt::Display for Incident {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}:", self.node)?;
        for p in Phase::ALL {
            match self.stamp(p) {
                Some(d) => write!(f, " {}@{:.1}ms", p.label(), d.as_secs_f64() * 1e3)?,
                None => write!(f, " {}@-", p.label())?,
            }
        }
        Ok(())
    }
}

struct TimelineInner {
    incidents: Vec<Incident>,
    /// node → index into `incidents` of its open (incomplete) incident.
    open: HashMap<u32, usize>,
    /// Runtime policy-controller switches, a separate track from the
    /// per-node failure incidents (a switch is cluster-wide, not tied to
    /// one node's kill→readmit arc).
    policy: Vec<PolicyChanged>,
}

/// One runtime policy switch, stamped on the shared timeline origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyChanged {
    /// Offset from the recorder's origin.
    pub at: Duration,
    /// Policy epoch before the switch.
    pub old_epoch: u64,
    /// Policy epoch after the switch.
    pub new_epoch: u64,
}

/// Thread-safe recorder of failure incidents. One per cluster/campaign;
/// all stamps share its origin instant.
pub struct TimelineRecorder {
    clock: ClockHandle,
    origin: Instant,
    inner: Mutex<TimelineInner>,
}

impl Default for TimelineRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for TimelineRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimelineRecorder")
            .field("incidents", &self.incidents().len())
            .finish()
    }
}

impl TimelineRecorder {
    /// A recorder whose origin is now (wall clock).
    pub fn new() -> Self {
        Self::with_clock(ClockHandle::wall())
    }

    /// A recorder stamping through `clock`; under a virtual clock the
    /// incident offsets are exact virtual latencies, not wall noise.
    pub fn with_clock(clock: ClockHandle) -> Self {
        TimelineRecorder {
            origin: clock.now(),
            clock,
            inner: Mutex::new(TimelineInner {
                incidents: Vec::new(),
                open: HashMap::new(),
                policy: Vec::new(),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TimelineInner> {
        // Poisoning only signals a panic elsewhere; stamps are
        // independent writes, so the state is still usable.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stamp `phase` for `node` at "now". First occurrence per incident
    /// wins; later repeats are ignored. A `Kill` for a node whose
    /// previous incident completed (or that has none) opens a new
    /// incident; any other phase joins the open incident, creating one
    /// implicitly when a client observes a failure the injector never
    /// announced (e.g. a flaky link).
    pub fn mark(&self, node: u32, phase: Phase) {
        let at = self.clock.since(self.origin);
        let mut g = self.lock();
        let idx = match g.open.get(&node) {
            Some(&i) if !(phase == Phase::Kill && g.incidents[i].is_complete()) => i,
            _ => {
                if phase == Phase::Kill {
                    // Re-kill of a recovered node: a fresh incident.
                    g.incidents.push(Incident::new(node));
                } else if g.open.contains_key(&node) {
                    // Open incident exists (matched above unless re-kill);
                    // unreachable, but stay total.
                    g.incidents.push(Incident::new(node));
                } else {
                    g.incidents.push(Incident::new(node));
                }
                let i = g.incidents.len() - 1;
                g.open.insert(node, i);
                i
            }
        };
        let slot = &mut g.incidents[idx].stamps[phase.idx()];
        if slot.is_none() {
            *slot = Some(at);
        }
    }

    /// All incidents recorded so far (clone; ordering = creation order).
    pub fn incidents(&self) -> Vec<Incident> {
        self.lock().incidents.clone()
    }

    /// Stamp a runtime policy switch (controller epoch bump) at "now".
    pub fn mark_policy_changed(&self, old_epoch: u64, new_epoch: u64) {
        let at = self.clock.since(self.origin);
        self.lock().policy.push(PolicyChanged {
            at,
            old_epoch,
            new_epoch,
        });
    }

    /// All policy switches recorded so far (stamp order).
    pub fn policy_changes(&self) -> Vec<PolicyChanged> {
        self.lock().policy.clone()
    }

    /// Detection latencies (kill → declare) of every incident that has
    /// both stamps.
    pub fn detection_latencies(&self) -> Vec<Duration> {
        self.lock()
            .incidents
            .iter()
            .filter_map(Incident::detection_latency)
            .collect()
    }

    /// Recovery latencies (kill → first recached hit) of every incident
    /// that has both stamps.
    pub fn recovery_latencies(&self) -> Vec<Duration> {
        self.lock()
            .incidents
            .iter()
            .filter_map(Incident::recovery_latency)
            .collect()
    }
}

/// Nearest-rank index for quantile `q` over `n` ascending samples:
/// `ceil(q·n) - 1`, clamped into `0..n`; `None` when `n == 0`. The one
/// definition of "percentile" in the workspace — every latency report
/// (campaign renders, dashboards, fleet binaries) indexes through this
/// so they all quote the same rank.
pub fn nearest_rank(n: usize, q: f64) -> Option<usize> {
    if n == 0 {
        return None;
    }
    let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    Some(rank - 1)
}

/// Percentile of a latency list (nearest-rank), `None` when empty.
/// Shared by campaign reports and dashboards so both quote the same
/// definition.
pub fn percentile(samples: &[Duration], q: f64) -> Option<Duration> {
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    nearest_rank(sorted.len(), q).map(|i| sorted[i])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_incident_derives_latencies() {
        let t = TimelineRecorder::new();
        for p in Phase::ALL {
            t.mark(2, p);
        }
        let incidents = t.incidents();
        assert_eq!(incidents.len(), 1);
        let inc = &incidents[0];
        assert!(inc.is_complete());
        let det = inc.detection_latency().expect("detection");
        let rec = inc.recovery_latency().expect("recovery");
        let qui = inc.quiesce_latency().expect("quiesce");
        assert!(det <= rec, "declare precedes recached hit");
        assert!(rec <= qui, "recached hit precedes quiescence here");
        // Stamps are monotone in causal order.
        let mut prev = Duration::ZERO;
        for p in Phase::ALL {
            let s = inc.stamp(p).expect("all phases stamped");
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn lazy_incident_has_no_recovery_phases() {
        let t = TimelineRecorder::new();
        for p in Phase::LAZY {
            t.mark(5, p);
        }
        let inc = &t.incidents()[0];
        assert!(inc.is_complete(), "lazy path still completes");
        assert!(inc.recovery_latency().is_some());
        assert_eq!(inc.quiesce_latency(), None);
        assert_eq!(inc.stamp(Phase::RecoveryStart), None);
    }

    #[test]
    fn first_occurrence_wins() {
        let t = TimelineRecorder::new();
        t.mark(1, Phase::Kill);
        t.mark(1, Phase::FirstTimeout);
        let first = t.incidents()[0].stamp(Phase::FirstTimeout);
        std::thread::sleep(Duration::from_millis(2));
        t.mark(1, Phase::FirstTimeout);
        assert_eq!(t.incidents()[0].stamp(Phase::FirstTimeout), first);
    }

    #[test]
    fn rekill_after_recovery_opens_new_incident() {
        let t = TimelineRecorder::new();
        t.mark(3, Phase::Kill);
        t.mark(3, Phase::Declare);
        t.mark(3, Phase::FirstRecachedHit);
        t.mark(3, Phase::Kill); // revived, killed again
        t.mark(3, Phase::Declare);
        let incidents = t.incidents();
        assert_eq!(incidents.len(), 2);
        assert!(incidents[0].is_complete());
        assert!(!incidents[1].is_complete());
        assert_eq!(t.detection_latencies().len(), 2);
        assert_eq!(t.recovery_latencies().len(), 1);
    }

    #[test]
    fn client_observed_failure_without_kill_has_no_latency() {
        // A flaky link can drive suspect/declare without any injected
        // kill; those incidents exist but contribute no kill-anchored
        // latency.
        let t = TimelineRecorder::new();
        t.mark(4, Phase::Suspect);
        t.mark(4, Phase::Declare);
        assert_eq!(t.incidents().len(), 1);
        assert!(t.detection_latencies().is_empty());
        assert!(t.recovery_latencies().is_empty());
    }

    #[test]
    fn out_of_order_stamps_pin_exact_virtual_latencies() {
        // Stamps can arrive out of causal order (a declare racing ahead
        // of the suspect that caused it) and repeat (two reads each
        // bumping the ring). On a virtual clock the derived latencies
        // are exact, so pin them: declare-before-suspect must not skew
        // detection, and only the FIRST ring bump counts.
        let incidents = ftc_time::with_virtual(|clock| {
            let t = TimelineRecorder::with_clock(clock.clone());
            t.mark(9, Phase::Kill); // t=0
            clock.sleep(Duration::from_millis(5));
            t.mark(9, Phase::Declare); // t=5, arrives before its suspect
            clock.sleep(Duration::from_millis(1));
            t.mark(9, Phase::Suspect); // t=6, late — joins the open incident
            clock.sleep(Duration::from_millis(1));
            t.mark(9, Phase::RingUpdate); // t=7
            clock.sleep(Duration::from_millis(1));
            t.mark(9, Phase::RingUpdate); // t=8, duplicate bump — ignored
            clock.sleep(Duration::from_millis(2));
            t.mark(9, Phase::FirstRecachedHit); // t=10
            t.incidents()
        });
        assert_eq!(
            incidents.len(),
            1,
            "out-of-order stamps must not fork incidents"
        );
        let inc = &incidents[0];
        assert_eq!(inc.detection_latency(), Some(Duration::from_millis(5)));
        assert_eq!(inc.recovery_latency(), Some(Duration::from_millis(10)));
        assert_eq!(
            inc.stamp(Phase::RingUpdate),
            Some(Duration::from_millis(7)),
            "first ring bump wins; the duplicate at t=8 is ignored"
        );
        assert_eq!(
            inc.stamp(Phase::Suspect),
            Some(Duration::from_millis(6)),
            "a suspect arriving after declare is still recorded where it happened"
        );
        assert!(inc.is_complete());
    }

    #[test]
    fn incident_display_is_readable() {
        let t = TimelineRecorder::new();
        t.mark(7, Phase::Kill);
        let s = t.incidents()[0].to_string();
        assert!(s.starts_with("n7:"));
        assert!(s.contains("kill@"));
        assert!(s.contains("declare@-"));
    }

    #[test]
    fn percentile_nearest_rank() {
        let ms: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(percentile(&ms, 0.5), Some(Duration::from_millis(50)));
        assert_eq!(percentile(&ms, 0.99), Some(Duration::from_millis(99)));
        assert_eq!(percentile(&ms, 1.0), Some(Duration::from_millis(100)));
        assert_eq!(percentile(&[], 0.5), None);
    }

    #[test]
    fn nearest_rank_covers_the_edges() {
        assert_eq!(nearest_rank(0, 0.5), None);
        // A single sample is every percentile.
        assert_eq!(nearest_rank(1, 0.0), Some(0));
        assert_eq!(nearest_rank(1, 1.0), Some(0));
        // q=0 still means "the first sample", never an out-of-range rank.
        assert_eq!(nearest_rank(100, 0.0), Some(0));
        assert_eq!(nearest_rank(100, 0.5), Some(49));
        assert_eq!(nearest_rank(100, 0.999), Some(99));
        // Out-of-domain q clamps instead of indexing out of bounds.
        assert_eq!(nearest_rank(10, -3.0), Some(0));
        assert_eq!(nearest_rank(10, 7.0), Some(9));
    }
}
