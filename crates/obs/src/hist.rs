//! Log-bucketed HDR-style histograms with mergeable snapshots.
//!
//! The recording side is a flat array of atomic bucket counters, so
//! `record` is wait-free (one `fetch_add` on the bucket plus tallies) and
//! safe to call from every RPC and read path in the system. The bucket
//! layout is the HdrHistogram idea reduced to its core: values `0..64`
//! map to exact unit buckets; above that, each power-of-two octave is
//! split into 32 sub-buckets, giving a worst-case relative error of
//! `1/32` (~3.1 %) across the full `u64` range — ample for latency
//! percentiles where the interesting ratios are 2x, not 3 %.
//!
//! Snapshots are plain structs: they merge element-wise (associative and
//! commutative, so per-rank histograms aggregate in any order) and answer
//! quantile queries by a cumulative walk.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each octave above the linear range is split
/// into `2^SUB_BITS` buckets.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB: u64 = 1 << SUB_BITS;
/// Values below `2 * SUB` land in exact unit buckets.
const LINEAR_MAX: u64 = 2 * SUB;
/// Total bucket count: the linear range plus 32 sub-buckets for each of
/// the 57 octaves a `u64` can reach above it.
pub(crate) const BUCKETS: usize = (LINEAR_MAX + (63 - SUB_BITS as u64) * SUB) as usize;

/// Bucket index for a value. Exact below [`LINEAR_MAX`]; logarithmic with
/// 32 sub-buckets per octave above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        v as usize
    } else {
        // Highest set bit; v >= 64 here so b >= 6.
        let b = 63 - v.leading_zeros() as u64;
        let shift = b - u64::from(SUB_BITS);
        let sub = (v >> shift) - SUB;
        (LINEAR_MAX + (b - u64::from(SUB_BITS) - 1) * SUB + sub) as usize
    }
}

/// Inclusive upper bound of a bucket (the value reported for quantiles
/// that land in it).
fn bucket_upper_bound(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_MAX {
        i
    } else {
        let oct = (i - LINEAR_MAX) / SUB;
        let sub = (i - LINEAR_MAX) % SUB;
        let shift = oct + 1;
        let lower = (SUB + sub) << shift;
        // Parenthesised so the top bucket (upper bound u64::MAX) does not
        // overflow in `lower + 2^shift` before the subtraction.
        lower + ((1u64 << shift) - 1)
    }
}

/// Inclusive lower bound of a bucket.
fn bucket_lower_bound(i: usize) -> u64 {
    let i = i as u64;
    if i < LINEAR_MAX {
        i
    } else {
        let oct = (i - LINEAR_MAX) / SUB;
        let sub = (i - LINEAR_MAX) % SUB;
        (SUB + sub) << (oct + 1)
    }
}

/// A lock-free log-bucketed histogram of `u64` values (latencies in
/// microseconds, sizes in bytes, …).
pub struct Histogram {
    /// Always exactly [`BUCKETS`] long.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("p50", &s.quantile(0.5))
            .field("p99", &s.quantile(0.99))
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value. Wait-free; safe on any hot path.
    pub fn record(&self, v: u64) {
        // ordering: Relaxed on all five — each counter is an independent
        // monotone tally with no cross-counter invariant a reader relies
        // on (a snapshot may be torn between buckets and `count`;
        // quantile consumers tolerate that by clamping to the walked
        // total, and exact totals exist once writers are quiesced).
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a `Duration` as whole microseconds (the repo-wide latency
    /// unit).
    pub fn record_micros(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Plain-value snapshot, mergeable and queryable.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = vec![0u64; BUCKETS];
        // ordering: Relaxed — see `record`; snapshots tolerate tearing
        // and only ever under- or over-count values still in flight.
        for (i, b) in self.buckets.iter().enumerate() {
            counts[i] = b.load(Ordering::Relaxed);
        }
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        HistogramSnapshot {
            counts,
            count,
            sum,
            min,
            max,
        }
    }
}

/// A point-in-time copy of a [`Histogram`]: merge across ranks/nodes,
/// then query quantiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (fixed layout shared by every histogram).
    counts: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// A snapshot with nothing recorded.
    pub fn empty() -> Self {
        HistogramSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of recorded values; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th smallest recording,
    /// clamped to the observed `max`. 0 when empty. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum = cum.saturating_add(c);
            if cum >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Element-wise sum with `other` (aggregation across ranks/nodes).
    /// Associative and commutative; counts saturate instead of wrapping.
    pub fn merge(&self, other: &Self) -> Self {
        let counts = self
            .counts
            .iter()
            .zip(&other.counts)
            .map(|(&a, &b)| a.saturating_add(b))
            .collect();
        HistogramSnapshot {
            counts,
            count: self.count.saturating_add(other.count),
            sum: self.sum.saturating_add(other.sum),
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Non-empty buckets as `(lower_bound, upper_bound, count)` triples,
    /// ascending — the exposition layer turns these into cumulative
    /// `le`-labelled Prometheus buckets.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lower_bound(i), bucket_upper_bound(i), c))
            .collect()
    }

    /// A fixed-width unicode sparkline of the value distribution over
    /// `width` log-spaced columns (dashboard rendering).
    pub fn sparkline(&self, width: usize) -> String {
        const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
        if width == 0 {
            return String::new();
        }
        if self.count == 0 {
            return " ".repeat(width);
        }
        // Collapse the occupied bucket range into `width` columns.
        let occupied: Vec<usize> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, _)| i)
            .collect();
        let (Some(&lo), Some(&hi)) = (occupied.first(), occupied.last()) else {
            return " ".repeat(width);
        };
        let span = (hi - lo + 1).max(width);
        let mut cols = vec![0u64; width];
        for (i, &c) in self.counts.iter().enumerate().skip(lo).take(hi - lo + 1) {
            let col = (i - lo) * width / span;
            cols[col] = cols[col].saturating_add(c);
        }
        let peak = cols.iter().copied().max().unwrap_or(1).max(1);
        cols.iter()
            .map(|&c| {
                if c == 0 {
                    ' '
                } else {
                    BARS[(c.saturating_mul(7).div_ceil(peak)).min(7) as usize]
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_contiguous_and_monotone() {
        // Every bucket's bounds nest: lower(i) <= upper(i) and
        // upper(i) + 1 == lower(i + 1).
        for i in 0..BUCKETS - 1 {
            assert!(bucket_lower_bound(i) <= bucket_upper_bound(i), "bucket {i}");
            assert_eq!(
                bucket_upper_bound(i) + 1,
                bucket_lower_bound(i + 1),
                "gap between buckets {i} and {}",
                i + 1
            );
        }
    }

    #[test]
    fn values_land_in_their_bucket() {
        for v in (0..2000u64).chain([1 << 20, u64::MAX / 2, u64::MAX]) {
            let i = bucket_index(v);
            assert!(
                bucket_lower_bound(i) <= v && v <= bucket_upper_bound(i),
                "value {v} outside bucket {i}: [{}, {}]",
                bucket_lower_bound(i),
                bucket_upper_bound(i)
            );
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 42, 63] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.0), 0);
        assert_eq!(s.quantile(1.0), 63);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 63);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 113);
    }

    #[test]
    fn relative_error_is_bounded() {
        let h = Histogram::new();
        for v in [100u64, 1_000, 10_000, 123_456, 9_999_999] {
            h.record(v);
            let s = h.snapshot();
            let q = s.quantile(1.0);
            assert!(q >= v, "quantile must not under-report: {q} < {v}");
            assert!(
                (q - v) as f64 / v as f64 <= 1.0 / 32.0 + 1e-9,
                "error too large for {v}: reported {q}"
            );
        }
    }

    #[test]
    fn quantiles_walk_the_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.50);
        let p99 = s.quantile(0.99);
        let p999 = s.quantile(0.999);
        assert!((480..=540).contains(&p50), "p50 = {p50}");
        assert!((960..=1000).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p99 && p99 <= p999);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn merge_matches_combined_recording() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 77, 1024, 5000] {
            a.record(v);
            all.record(v);
        }
        for v in [10u64, 2048, 999_999] {
            b.record(v);
            all.record(v);
        }
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        // Commutativity.
        assert_eq!(merged, b.snapshot().merge(&a.snapshot()));
    }

    #[test]
    fn empty_snapshot_answers_zero() {
        let s = HistogramSnapshot::empty();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sparkline(8), "        ");
    }

    #[test]
    fn sparkline_shape() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.record(10);
        }
        h.record(1_000_000);
        let line = h.snapshot().sparkline(12);
        assert_eq!(line.chars().count(), 12);
        assert!(line.contains('█'), "peak column must be full height");
    }

    #[test]
    fn concurrent_recording_loses_nothing_once_joined() {
        let h = std::sync::Arc::new(Histogram::new());
        let mut joins = Vec::new();
        for t in 0..4u64 {
            let h = std::sync::Arc::clone(&h);
            joins.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.record(t * 1000 + i % 977);
                }
            }));
        }
        for j in joins {
            j.join().expect("recorder thread");
        }
        let s = h.snapshot();
        assert_eq!(s.count, 40_000);
        assert_eq!(s.counts.iter().sum::<u64>(), 40_000);
    }
}
