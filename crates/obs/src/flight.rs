//! The flight recorder: a bounded ring of recent structured events.
//!
//! When a chaos invariant fires, the campaign's aggregate counters tell
//! you *that* something went wrong; the flight recorder tells you *what
//! happened just before*. Every layer appends cheap structured events
//! (RPC timed out, detector transitioned, ring dropped a node, mover
//! recached a file) into a fixed-capacity ring; old events fall off the
//! back, so memory stays bounded no matter how long a campaign runs. On a
//! violation — or a panic, via [`FlightRecorder::install_panic_dump`] —
//! the ring is rendered to text and attached to the report.
//!
//! Recording takes one short mutex; this is deliberately simpler than the
//! metrics registry because flight events are orders of magnitude rarer
//! than metric increments (state transitions, not per-read ticks).

use ftc_time::ClockHandle;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (never reused; survives ring eviction, so
    /// gaps in a dump reveal how much history was lost).
    pub seq: u64,
    /// Offset from the recorder's origin.
    pub at: Duration,
    /// Who recorded it: `"client:3"`, `"net"`, `"chaos"`, …
    pub actor: String,
    /// Event class: `"rpc_timeout"`, `"verdict"`, `"kill"`, …
    pub kind: String,
    /// Free-form detail, already formatted.
    pub detail: String,
}

impl std::fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "#{:06} {:>9.3}ms {:<10} {:<18} {}",
            self.seq,
            self.at.as_secs_f64() * 1e3,
            self.actor,
            self.kind,
            self.detail
        )
    }
}

/// Bounded, thread-safe ring buffer of [`FlightEvent`]s.
pub struct FlightRecorder {
    clock: ClockHandle,
    origin: Instant,
    capacity: usize,
    seq: AtomicU64,
    ring: Mutex<VecDeque<FlightEvent>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// Default ring capacity: enough to cover the full degraded window of
    /// several overlapping failures at transition-event rates.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// A recorder holding at most `capacity` events (minimum 1), stamped
    /// by the wall clock.
    pub fn new(capacity: usize) -> Self {
        Self::with_clock(capacity, ClockHandle::wall())
    }

    /// A recorder stamping event offsets through `clock`.
    pub fn with_clock(capacity: usize, clock: ClockHandle) -> Self {
        FlightRecorder {
            origin: clock.now(),
            clock,
            capacity: capacity.max(1),
            seq: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<FlightEvent>> {
        // A poisoned ring still holds well-formed events (push/pop are
        // not interruptible mid-event); recover rather than propagate —
        // the recorder is most needed exactly when something panicked.
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn record(&self, actor: &str, kind: &str, detail: impl Into<String>) {
        // ordering: Relaxed — seq only needs uniqueness/monotonicity per
        // event, not ordering against the ring mutex it precedes.
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let ev = FlightEvent {
            seq,
            at: self.clock.since(self.origin),
            actor: actor.to_owned(),
            kind: kind.to_owned(),
            detail: detail.into(),
        };
        let mut g = self.lock();
        if g.len() >= self.capacity {
            g.pop_front();
        }
        g.push_back(ev);
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Total events ever recorded (including evicted ones).
    pub fn total_recorded(&self) -> u64 {
        // ordering: Relaxed — observational read of a monotone counter.
        self.seq.load(Ordering::Relaxed)
    }

    /// Copy of the retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.lock().iter().cloned().collect()
    }

    /// Render the retained events as a text block for embedding in a
    /// report (header line + one line per event).
    pub fn dump(&self) -> String {
        let events = self.events();
        let total = self.total_recorded();
        let mut out = format!(
            "--- flight recorder: {} of {} events retained ---\n",
            events.len(),
            total
        );
        for ev in &events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out.push_str("--- end flight recorder ---\n");
        out
    }

    /// Install a panic hook that prints this recorder's dump to stderr
    /// before the previous hook runs, so a panicking test leaves its last
    /// ~N events in the failure output. Chains (does not replace) the
    /// existing hook; call at most once per recorder.
    pub fn install_panic_dump(recorder: &Arc<FlightRecorder>) {
        let rec = Arc::downgrade(recorder);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(rec) = rec.upgrade() {
                eprintln!("{}", rec.dump());
            }
            prev(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_dumps_in_order() {
        let fr = FlightRecorder::new(16);
        fr.record("client:0", "rpc_timeout", "n3 get k17");
        fr.record("client:0", "verdict", "n3 Suspect");
        let events = fr.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[1].seq, 1);
        assert!(events[0].at <= events[1].at);
        let dump = fr.dump();
        assert!(dump.contains("2 of 2 events retained"));
        assert!(dump.contains("rpc_timeout"));
        assert!(dump.contains("n3 Suspect"));
        assert!(dump.ends_with("--- end flight recorder ---\n"));
    }

    #[test]
    fn ring_evicts_oldest_but_keeps_seq() {
        let fr = FlightRecorder::new(4);
        for i in 0..10 {
            fr.record("t", "tick", format!("{i}"));
        }
        let events = fr.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].seq, 6, "oldest retained is #6");
        assert_eq!(events[3].seq, 9);
        assert_eq!(fr.total_recorded(), 10);
        assert!(fr.dump().contains("4 of 10 events retained"));
    }

    #[test]
    fn capacity_floor_is_one() {
        let fr = FlightRecorder::new(0);
        fr.record("a", "x", "1");
        fr.record("a", "x", "2");
        assert_eq!(fr.len(), 1);
        assert_eq!(fr.events()[0].detail, "2");
    }

    #[test]
    fn concurrent_recording_is_lossless_up_to_capacity() {
        let fr = Arc::new(FlightRecorder::new(10_000));
        let mut joins = Vec::new();
        for t in 0..4 {
            let fr = Arc::clone(&fr);
            joins.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    fr.record(&format!("t{t}"), "ev", format!("{i}"));
                }
            }));
        }
        for j in joins {
            j.join().expect("recorder thread");
        }
        assert_eq!(fr.len(), 4000);
        assert_eq!(fr.total_recorded(), 4000);
        // Sequence numbers are unique.
        let mut seqs: Vec<u64> = fr.events().iter().map(|e| e.seq).collect();
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 4000);
    }
}
