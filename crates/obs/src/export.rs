//! Exposition: one sample model, two renderers.
//!
//! Everything observable — registry metrics, legacy flat snapshots,
//! per-node stats — flattens into a `Vec<Sample>` via the [`Export`]
//! trait, and the two renderers ([`render_prometheus`], [`render_json`])
//! work on that flat list. That keeps the wire formats in exactly one
//! place: a new subsystem implements `Export` and both formats pick it up
//! unchanged.
//!
//! The Prometheus renderer follows the text exposition conventions:
//! `# TYPE` comment per metric family, `_total`-suffixed counters,
//! histograms expanded into cumulative `_bucket{le="…"}` series plus
//! `_sum` / `_count`. The JSON renderer is hand-rolled (the workspace
//! `serde` is a hermetic marker-trait shim) and emits a stable,
//! deterministic document: object keys in sample order, histogram
//! quantiles pre-computed so downstream tooling needs no bucket math.

use crate::hist::HistogramSnapshot;

/// The value carried by one [`Sample`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A monotone count.
    Counter(u64),
    /// An instantaneous level (may be fractional, e.g. a ratio).
    Gauge(f64),
    /// A full distribution snapshot.
    Histogram(HistogramSnapshot),
}

/// One named, optionally labelled observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Metric family name (`snake_case`, Prometheus conventions).
    pub name: String,
    /// Label pairs, e.g. `("node", "3")`. Empty for unlabelled metrics.
    pub labels: Vec<(String, String)>,
    /// The observation itself.
    pub value: Value,
}

impl Sample {
    /// An unlabelled counter sample.
    pub fn counter(name: &str, v: u64) -> Self {
        Sample {
            name: name.to_owned(),
            labels: Vec::new(),
            value: Value::Counter(v),
        }
    }

    /// An unlabelled gauge sample.
    pub fn gauge(name: &str, v: f64) -> Self {
        Sample {
            name: name.to_owned(),
            labels: Vec::new(),
            value: Value::Gauge(v),
        }
    }

    /// Attach a label pair (builder-style).
    pub fn with_label(mut self, key: &str, value: impl ToString) -> Self {
        self.labels.push((key.to_owned(), value.to_string()));
        self
    }
}

/// Anything that can flatten itself into exposition samples. Implemented
/// by the registry and by the legacy flat snapshots (`ClientMetrics`,
/// `NetStats`, `NvmeStats`) so one exporter reaches every counter in the
/// system.
pub trait Export {
    /// Append this object's samples to `out`. Implementations should use
    /// stable names and push in deterministic order.
    fn export_into(&self, out: &mut Vec<Sample>);

    /// Convenience: collect into a fresh vector.
    fn export(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        self.export_into(&mut out);
        out
    }
}

impl Export for crate::registry::Registry {
    fn export_into(&self, out: &mut Vec<Sample>) {
        out.extend(self.samples());
    }
}

fn fmt_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Format a gauge value the way Prometheus clients do: integral values
/// without a trailing `.0`, everything else with full precision.
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render samples in the Prometheus text exposition format. Families keep
/// the order of first appearance in `samples`; a `# TYPE` line precedes
/// each family once.
pub fn render_prometheus(samples: &[Sample]) -> String {
    let mut out = String::new();
    let mut typed: Vec<&str> = Vec::new();
    for s in samples {
        let kind = match &s.value {
            Value::Counter(_) => "counter",
            Value::Gauge(_) => "gauge",
            Value::Histogram(_) => "histogram",
        };
        if !typed.contains(&s.name.as_str()) {
            typed.push(&s.name);
            out.push_str(&format!("# TYPE {} {kind}\n", s.name));
        }
        match &s.value {
            Value::Counter(v) => {
                out.push_str(&format!("{}{} {v}\n", s.name, fmt_labels(&s.labels, None)));
            }
            Value::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    fmt_labels(&s.labels, None),
                    fmt_f64(*v)
                ));
            }
            Value::Histogram(h) => {
                let mut cum = 0u64;
                for (_, upper, c) in h.nonzero_buckets() {
                    cum = cum.saturating_add(c);
                    out.push_str(&format!(
                        "{}_bucket{} {cum}\n",
                        s.name,
                        fmt_labels(&s.labels, Some(("le", &upper.to_string())))
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    s.name,
                    fmt_labels(&s.labels, Some(("le", "+Inf"))),
                    h.count
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    s.name,
                    fmt_labels(&s.labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    s.name,
                    fmt_labels(&s.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render samples as a JSON array (hand-rolled: the workspace `serde` is
/// a marker-trait shim). Histograms carry pre-computed quantiles so
/// consumers need no bucket layout knowledge.
pub fn render_json(samples: &[Sample]) -> String {
    let mut items: Vec<String> = Vec::with_capacity(samples.len());
    for s in samples {
        let labels = s
            .labels
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
            .collect::<Vec<_>>()
            .join(",");
        let body = match &s.value {
            Value::Counter(v) => format!("\"type\":\"counter\",\"value\":{v}"),
            Value::Gauge(v) => format!("\"type\":\"gauge\",\"value\":{}", fmt_f64(*v)),
            Value::Histogram(h) => format!(
                "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                 \"p50\":{},\"p99\":{},\"p999\":{}",
                h.count,
                h.sum,
                if h.is_empty() { 0 } else { h.min },
                h.max,
                h.quantile(0.5),
                h.quantile(0.99),
                h.quantile(0.999),
            ),
        };
        items.push(format!(
            "{{\"name\":\"{}\",\"labels\":{{{labels}}},{body}}}",
            escape_json(&s.name)
        ));
    }
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn counters_and_gauges_render_flat() {
        let samples = vec![
            Sample::counter("ftc_reads_total", 42),
            Sample::gauge("ftc_inflight", 3.0),
            Sample::gauge("ftc_hit_ratio", 0.75),
        ];
        let text = render_prometheus(&samples);
        assert!(text.contains("# TYPE ftc_reads_total counter\n"));
        assert!(text.contains("ftc_reads_total 42\n"));
        assert!(text.contains("ftc_inflight 3\n"));
        assert!(text.contains("ftc_hit_ratio 0.75\n"));
    }

    #[test]
    fn labels_render_in_braces() {
        let s = Sample::counter("ftc_hits_total", 7).with_label("node", 3);
        let text = render_prometheus(&[s]);
        assert!(text.contains("ftc_hits_total{node=\"3\"} 7\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let h = Histogram::new();
        h.record(1);
        h.record(1);
        h.record(100);
        let s = Sample {
            name: "ftc_read_us".into(),
            labels: Vec::new(),
            value: Value::Histogram(h.snapshot()),
        };
        let text = render_prometheus(&[s]);
        assert!(text.contains("# TYPE ftc_read_us histogram\n"));
        assert!(text.contains("ftc_read_us_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("ftc_read_us_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("ftc_read_us_sum 102\n"));
        assert!(text.contains("ftc_read_us_count 3\n"));
        // Cumulative: the last finite bucket already holds all 3.
        assert!(text.contains("} 3\nftc_read_us_bucket{le=\"+Inf\"} 3\n"));
    }

    #[test]
    fn type_line_emitted_once_per_family() {
        let samples = vec![
            Sample::counter("ftc_hits_total", 1).with_label("node", 0),
            Sample::counter("ftc_hits_total", 2).with_label("node", 1),
        ];
        let text = render_prometheus(&samples);
        assert_eq!(text.matches("# TYPE ftc_hits_total").count(), 1);
    }

    #[test]
    fn json_is_structurally_sound() {
        let h = Histogram::new();
        h.record(50);
        let samples = vec![
            Sample::counter("a_total", 1),
            Sample::gauge("b", 2.5).with_label("k", "v\"q"),
            Sample {
                name: "c_us".into(),
                labels: Vec::new(),
                value: Value::Histogram(h.snapshot()),
            },
        ];
        let json = render_json(&samples);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"name\":\"a_total\""));
        assert!(json.contains("\"k\":\"v\\\"q\""));
        assert!(json.contains("\"p50\":50"));
        // Balanced braces (quick sanity, no parser in the workspace).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON"
        );
    }

    #[test]
    fn registry_exports_through_trait() {
        let r = crate::registry::Registry::new();
        r.counter("x_total").add(9);
        let samples = Export::export(&r);
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0], Sample::counter("x_total", 9));
    }
}
