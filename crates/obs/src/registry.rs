//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (name → handle) takes a lock; every *update* after that
//! is a single atomic op on a shared handle, so the hot paths — RPC legs,
//! cache reads, retry loops — never contend on the registry itself.
//! Callers keep the `Arc` handle they were given at registration and
//! touch the registry again only to snapshot.
//!
//! Names are expected to follow Prometheus conventions (`snake_case`,
//! counters ending in `_total`, unit suffixes like `_us` / `_bytes`), and
//! the registry stores them in sorted order so every exposition render is
//! deterministic — the golden test depends on that.

use crate::export::{Sample, Value};
use crate::hist::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `v`.
    pub fn add(&self, v: u64) {
        // ordering: Relaxed — pure statistic: independent monotone tally,
        // no cross-counter invariant, snapshots tolerate lag.
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ordering: Relaxed — observational read of a monotone tally.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set the value.
    pub fn set(&self, v: i64) {
        // ordering: Relaxed — last-writer-wins status value; readers need
        // only *a* recent value, no ordering with other state.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        // ordering: Relaxed — independent tally, same as `Counter::add`.
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // ordering: Relaxed — observational read.
        self.0.load(Ordering::Relaxed)
    }
}

/// The store behind [`Registry`]; `BTreeMap` keeps iteration (and thus
/// exposition) in deterministic name order.
#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Named-metric registry. Cheap to share (`Arc<Registry>`); see the
/// module docs for the locking discipline.
#[derive(Default)]
pub struct Registry {
    inner: RwLock<Inner>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.read();
        f.debug_struct("Registry")
            .field("counters", &g.counters.len())
            .field("gauges", &g.gauges.len())
            .field("histograms", &g.histograms.len())
            .finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Inner> {
        // A poisoned lock only means a panic elsewhere mid-registration;
        // the map is still structurally sound (no partial inserts), so
        // recover the guard instead of propagating the panic.
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.read().counters.get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.write()
                .counters
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Counter::default())),
        )
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.read().gauges.get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.write()
                .gauges
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Gauge::default())),
        )
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.read().histograms.get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.write()
                .histograms
                .entry(name.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Snapshot every metric as exposition samples, sorted by name —
    /// identical metric activity always exposes identically, regardless
    /// of registration order (the golden exposition tests pin this).
    pub fn samples(&self) -> Vec<Sample> {
        let g = self.read();
        let mut out = Vec::new();
        for (name, c) in &g.counters {
            out.push(Sample::counter(name, c.get()));
        }
        for (name, v) in &g.gauges {
            out.push(Sample::gauge(name, v.get() as f64));
        }
        for (name, h) in &g.histograms {
            out.push(Sample {
                name: name.clone(),
                labels: Vec::new(),
                value: Value::Histogram(h.snapshot()),
            });
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let r = Registry::new();
        let a = r.counter("ftc_reads_total");
        let b = r.counter("ftc_reads_total");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("ftc_reads_total").get(), 5);
    }

    #[test]
    fn gauges_go_both_ways() {
        let r = Registry::new();
        let g = r.gauge("ftc_inflight");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histograms_register_once() {
        let r = Registry::new();
        r.histogram("ftc_read_us").record(100);
        r.histogram("ftc_read_us").record(200);
        let samples = r.samples();
        assert_eq!(samples.len(), 1);
        match &samples[0].value {
            Value::Histogram(h) => assert_eq!(h.count, 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn samples_are_sorted_by_name() {
        let r = Registry::new();
        r.counter("zzz_total");
        r.counter("aaa_total");
        let names: Vec<_> = r.samples().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["aaa_total", "zzz_total"]);
    }

    #[test]
    fn concurrent_registration_converges_to_one_handle() {
        let r = Arc::new(Registry::new());
        let mut joins = Vec::new();
        for _ in 0..8 {
            let r = Arc::clone(&r);
            joins.push(std::thread::spawn(move || {
                for i in 0..100 {
                    r.counter(&format!("c{}_total", i % 10)).inc();
                }
            }));
        }
        for j in joins {
            j.join().expect("registrar thread");
        }
        let total: u64 = (0..10)
            .map(|i| r.counter(&format!("c{i}_total")).get())
            .sum();
        assert_eq!(total, 800);
    }
}
