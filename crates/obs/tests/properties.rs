//! Property-based tests for the histogram core.
//!
//! The histogram is the one piece of `ftc-obs` with real math in it, and
//! every latency number the repo reports flows through it, so its three
//! contracts get adversarial treatment: recorded values land in buckets
//! that contain them (with the advertised 1/32 relative error), quantile
//! queries are monotone and bounded against a sorted-vec oracle, and
//! snapshot merging is associative/commutative and indistinguishable
//! from having recorded everything into one histogram.

use ftc_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Record a value list into a fresh histogram and snapshot it.
fn snap(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Latency-shaped values: unit-exact range, mid-range, and large enough
/// to cross many octaves — but bounded so sums cannot overflow `u64`
/// within a test-sized list (merge saturates, live recording wraps; the
/// oracle comparison needs neither to trigger).
fn value() -> impl Strategy<Value = u64> {
    prop_oneof![0u64..64, 64u64..100_000, 100_000u64..(1u64 << 40)]
}

/// Nearest-rank quantile of a sorted copy — the oracle the histogram's
/// bucketed answer is checked against.
fn oracle_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tallies are exact and every recorded value is contained in some
    /// non-empty bucket whose bounds bracket it.
    #[test]
    fn recorded_values_are_contained_and_tallied(
        values in prop::collection::vec(value(), 1..120),
    ) {
        let s = snap(&values);
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.sum, values.iter().sum::<u64>());
        prop_assert_eq!(s.min, *values.iter().min().expect("non-empty"));
        prop_assert_eq!(s.max, *values.iter().max().expect("non-empty"));
        let buckets = s.nonzero_buckets();
        let total: u64 = buckets.iter().map(|&(_, _, c)| c).sum();
        prop_assert_eq!(total, s.count, "bucket counts must sum to count");
        for &v in &values {
            prop_assert!(
                buckets.iter().any(|&(lo, hi, _)| lo <= v && v <= hi),
                "value {} not contained in any non-empty bucket", v
            );
        }
    }

    /// The bucketed quantile never under-reports the oracle and
    /// over-reports by at most the advertised 1/32 relative error.
    #[test]
    fn quantile_tracks_sorted_oracle_within_error(
        values in prop::collection::vec(value(), 1..120),
        q in 0.0f64..1.0,
    ) {
        let s = snap(&values);
        let got = s.quantile(q);
        let want = oracle_quantile(&values, q);
        prop_assert!(got >= want, "quantile under-reported: {} < {}", got, want);
        prop_assert!(
            got - want <= want / 32 + 1,
            "quantile error too large: got {}, oracle {}", got, want
        );
    }

    /// Quantile queries are monotone in `q`.
    #[test]
    fn quantile_is_monotone(
        values in prop::collection::vec(value(), 1..120),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let s = snap(&values);
        prop_assert!(s.quantile(lo) <= s.quantile(hi));
    }

    /// Merging is commutative, associative, and equal to recording the
    /// concatenated value list into one histogram — so per-rank
    /// histograms aggregate in any order without drift.
    #[test]
    fn merge_is_assoc_comm_and_matches_combined_recording(
        xs in prop::collection::vec(value(), 0..60),
        ys in prop::collection::vec(value(), 0..60),
        zs in prop::collection::vec(value(), 0..60),
    ) {
        let (a, b, c) = (snap(&xs), snap(&ys), snap(&zs));
        prop_assert_eq!(a.merge(&b), b.merge(&a), "merge must commute");
        prop_assert_eq!(
            a.merge(&b).merge(&c),
            a.merge(&b.merge(&c)),
            "merge must associate"
        );
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        prop_assert_eq!(
            a.merge(&b).merge(&c),
            snap(&all),
            "merged snapshots must equal one combined recording"
        );
        // The empty snapshot is the identity element.
        prop_assert_eq!(a.merge(&HistogramSnapshot::empty()), a);
    }
}
