//! Golden tests pinning the wire formats byte-for-byte.
//!
//! The Prometheus text and JSON renderings are consumed outside this
//! repo (scrapers, plotting scripts), so their exact bytes are part of
//! the public contract: family ordering, `# TYPE` placement, label
//! syntax, cumulative bucket expansion, and number formatting. Any
//! change to a renderer must consciously update these fixtures.

use ftc_obs::{render_json, render_prometheus, Export, Histogram, Registry, Sample, Value};

/// A fixed, fully deterministic sample set: a counter, a fractional
/// gauge, a labelled gauge, and a histogram with values chosen to land
/// in known buckets (unit-exact 1 and 3; 64 -> [64,65]; 100 -> [100,101];
/// 1000 -> [992,1007]).
fn golden_samples() -> Vec<Sample> {
    let h = Histogram::new();
    for v in [1u64, 1, 3, 64, 100, 1000] {
        h.record(v);
    }
    vec![
        Sample::counter("ftc_golden_reads_total", 42),
        Sample::gauge("ftc_golden_hit_ratio", 0.75),
        Sample::gauge("ftc_golden_inflight", 2.0).with_label("node", 3),
        Sample {
            name: "ftc_golden_read_us".to_owned(),
            labels: Vec::new(),
            value: Value::Histogram(h.snapshot()),
        },
    ]
}

#[test]
fn prometheus_exposition_is_pinned() {
    let expected = "\
# TYPE ftc_golden_reads_total counter
ftc_golden_reads_total 42
# TYPE ftc_golden_hit_ratio gauge
ftc_golden_hit_ratio 0.75
# TYPE ftc_golden_inflight gauge
ftc_golden_inflight{node=\"3\"} 2
# TYPE ftc_golden_read_us histogram
ftc_golden_read_us_bucket{le=\"1\"} 2
ftc_golden_read_us_bucket{le=\"3\"} 3
ftc_golden_read_us_bucket{le=\"65\"} 4
ftc_golden_read_us_bucket{le=\"101\"} 5
ftc_golden_read_us_bucket{le=\"1007\"} 6
ftc_golden_read_us_bucket{le=\"+Inf\"} 6
ftc_golden_read_us_sum 1169
ftc_golden_read_us_count 6
";
    assert_eq!(render_prometheus(&golden_samples()), expected);
}

#[test]
fn json_exposition_is_pinned() {
    let expected = concat!(
        "[",
        "{\"name\":\"ftc_golden_reads_total\",\"labels\":{},\"type\":\"counter\",\"value\":42},",
        "{\"name\":\"ftc_golden_hit_ratio\",\"labels\":{},\"type\":\"gauge\",\"value\":0.75},",
        "{\"name\":\"ftc_golden_inflight\",\"labels\":{\"node\":\"3\"},\"type\":\"gauge\",\"value\":2},",
        "{\"name\":\"ftc_golden_read_us\",\"labels\":{},\"type\":\"histogram\",",
        "\"count\":6,\"sum\":1169,\"min\":1,\"max\":1000,\"p50\":3,\"p99\":1000,\"p999\":1000}",
        "]",
    );
    assert_eq!(render_json(&golden_samples()), expected);
}

#[test]
fn registry_exposition_order_is_name_sorted() {
    // The registry hands samples out in BTreeMap (name-sorted) order, so
    // identical metric activity always renders identically regardless of
    // creation order. Pin that, end to end through the renderer.
    let r = Registry::new();
    r.counter("ftc_z_last_total").inc();
    r.gauge("ftc_a_first").set(5);
    r.counter("ftc_m_middle_total").add(7);
    let expected = "\
# TYPE ftc_a_first gauge
ftc_a_first 5
# TYPE ftc_m_middle_total counter
ftc_m_middle_total 7
# TYPE ftc_z_last_total counter
ftc_z_last_total 1
";
    assert_eq!(render_prometheus(&r.export()), expected);
}
