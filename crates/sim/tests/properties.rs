//! Property tests for the discrete-event engine and the simulated
//! cluster's conservation laws.

use ftc_core::FtPolicy;
use ftc_hashring::NodeId;
use ftc_sim::{EventQueue, FaultEvent, SimCalibration, SimCluster, SimWorkload};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The event queue pops every scheduled event, in non-decreasing time
    /// order, with FIFO tie-breaks.
    #[test]
    fn queue_orders_any_schedule(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(t, i);
        }
        let mut popped = Vec::new();
        let mut last = (0u64, 0usize);
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last.0, "time order");
            if t == last.0 {
                prop_assert!(i > last.1 || popped.is_empty(), "FIFO tie-break");
            }
            prop_assert_eq!(t, times[i], "event carries its scheduled time");
            last = (t, i);
            popped.push(i);
        }
        prop_assert_eq!(popped.len(), times.len());
        prop_assert_eq!(q.processed(), times.len() as u64);
    }

    /// Simulated training conserves reads: a clean run issues exactly
    /// samples x epochs reads, of which exactly `samples` hit the PFS
    /// (the cold epoch), and the clock only moves forward.
    #[test]
    fn clean_run_conservation(
        nodes in 1u32..24,
        samples in 1u32..600,
        epochs in 1u32..5,
        policy_ix in 0usize..3,
    ) {
        let policy = [FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache][policy_ix];
        let w = SimWorkload {
            samples,
            sample_bytes: 1_000_000,
            epochs,
            seed: 11,
            time_compression: 1,
        };
        let r = SimCluster::new(nodes, policy, samples, SimCalibration::frontier()).run(w, &[]);
        prop_assert!(!r.aborted);
        prop_assert_eq!(r.pfs_reads, u64::from(samples), "cold epoch fetches each file once");
        prop_assert_eq!(r.timeouts, 0);
        prop_assert_eq!(r.rollbacks, 0);
        prop_assert_eq!(r.epoch_times_s.len(), epochs as usize);
        prop_assert!(r.epoch_times_s.iter().all(|&t| t > 0.0));
        let sum: f64 = r.epoch_times_s.iter().sum();
        prop_assert!((sum - r.total_s).abs() < 1e-6 * r.total_s.max(1.0));
    }

    /// Under a single injected failure, FT policies never abort, produce
    /// exactly one rollback, and bound PFS traffic by dataset + lost +
    /// detection.
    #[test]
    fn single_failure_bounds(
        nodes in 2u32..24,
        samples in 32u32..400,
        victim in 0u32..24,
        policy_ix in 0usize..2,
    ) {
        let policy = [FtPolicy::PfsRedirect, FtPolicy::RingRecache][policy_ix];
        let victim = NodeId(victim % nodes);
        let w = SimWorkload {
            samples,
            sample_bytes: 1_000_000,
            epochs: 3,
            seed: 17,
            time_compression: 1,
        };
        let r = SimCluster::new(nodes, policy, samples, SimCalibration::frontier()).run(
            w,
            &[FaultEvent { epoch: 1, step: 0, node: victim }],
        );
        prop_assert!(!r.aborted || nodes == 1);
        prop_assert_eq!(r.rollbacks, 1);
        prop_assert_eq!(r.first_failure_epoch, Some(1));
        prop_assert!(r.victim_epoch_s.is_some());
        // PFS traffic ceiling: cold epoch + (2 post-failure epochs x lost
        // keys, which are at most all keys) + detection windows.
        let ceiling = u64::from(samples) * 3 + u64::from(nodes) * 4;
        prop_assert!(
            r.pfs_reads <= ceiling,
            "pfs reads {} exceed ceiling {}", r.pfs_reads, ceiling
        );
        // And the run is strictly slower than its clean twin.
        let clean = SimCluster::new(nodes, policy, samples, SimCalibration::frontier()).run(w, &[]);
        prop_assert!(r.total_s > clean.total_s);
    }
}
