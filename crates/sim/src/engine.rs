//! The discrete-event core: a virtual clock and a deterministic event
//! queue.
//!
//! Determinism matters more than raw speed here: two events at the same
//! timestamp pop in scheduling order (FIFO tie-break via a sequence
//! number), so simulation results are bit-identical across runs and
//! platforms — a requirement for the reproduction harness, whose outputs
//! are compared against recorded expectations.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in nanoseconds.
pub type SimTime = u64;

/// One second of simulated time.
pub const SEC: SimTime = 1_000_000_000;

/// Convert (non-negative) seconds to [`SimTime`], saturating.
#[inline]
pub fn secs(s: f64) -> SimTime {
    if s <= 0.0 {
        0
    } else {
        (s * SEC as f64).round().min(u64::MAX as f64) as SimTime
    }
}

/// Convert [`SimTime`] back to floating seconds.
#[inline]
pub fn to_secs(t: SimTime) -> f64 {
    t as f64 / SEC as f64
}

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Deterministic future-event list with a monotone clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: SimTime,
    next_seq: u64,
    processed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue at t = 0.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: 0,
            next_seq: 0,
            processed: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Pending event count.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// If `at` is in the simulated past — causality violations are always
    /// bugs in the model, never tolerable.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} but now is {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` after `delay` from now (saturating).
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now.saturating_add(delay), event);
    }

    /// Pop the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let s = self.heap.pop()?;
        debug_assert!(s.at >= self.now, "heap yielded a past event");
        self.now = s.at;
        self.processed += 1;
        Some((s.at, s.event))
    }

    /// Discard all pending events without touching the clock (epoch
    /// rollback: the in-flight step completions of a failed attempt are
    /// moot).
    pub fn clear_pending(&mut self) {
        self.heap.clear();
    }

    /// Advance the clock directly (idle gaps like elastic-resume pauses).
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(t >= self.now, "cannot rewind the clock");
        self.now = t;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_conversions() {
        assert_eq!(secs(1.0), SEC);
        assert_eq!(secs(0.0), 0);
        assert_eq!(secs(-5.0), 0);
        assert!((to_secs(secs(2.5)) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(30, "c");
        q.schedule_at(10, "a");
        q.schedule_at(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
        assert_eq!(q.processed(), 3);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(42, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((42, i)));
        }
    }

    #[test]
    fn clock_is_monotone() {
        let mut q = EventQueue::new();
        q.schedule_at(5, ());
        q.pop();
        assert_eq!(q.now(), 5);
        q.schedule_in(10, ());
        q.pop();
        assert_eq!(q.now(), 15);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn past_scheduling_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10, ());
        q.pop();
        q.schedule_at(5, ());
    }

    #[test]
    fn clear_pending_keeps_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(10, 1);
        q.pop();
        q.schedule_at(50, 2);
        q.schedule_at(60, 3);
        q.clear_pending();
        assert!(q.is_empty());
        assert_eq!(q.now(), 10);
        q.advance_to(100);
        assert_eq!(q.now(), 100);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "first");
        let (t, _) = q.pop().unwrap();
        q.schedule_at(t + 5, "second");
        q.schedule_at(t + 2, "between");
        assert_eq!(q.pop().unwrap().1, "between");
        assert_eq!(q.pop().unwrap().1, "second");
    }

    #[test]
    fn saturating_schedule_in() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule_at(u64::MAX - 1, ());
        q.pop();
        q.schedule_in(u64::MAX, ()); // must not overflow
        assert_eq!(q.pop().unwrap().0, u64::MAX);
    }
}
