//! The simulated FT-Cache cluster: the same placement, detection and
//! policy logic as the threaded mode, driven by the discrete-event engine
//! over the calibrated cost models — which is what lets the harness run
//! 64–1024-node CosmoFlow trainings (Figures 5 and 6(a)) on one machine.
//!
//! Granularity: one event per (rank, step). Within a step each rank's I/O
//! time is assembled from per-sample reads (local NVMe / remote NVMe /
//! PFS under processor sharing / timeout windows); the barrier takes the
//! max across ranks and adds compute + allreduce — so stragglers emerge
//! exactly as §IV-A1 describes: one PFS-bound rank stalls the step.

use crate::calibration::SimCalibration;
use crate::engine::{secs, to_secs, EventQueue};
use ftc_core::FtPolicy;
use ftc_hashring::{HashRing, NodeId, Placement};
use ftc_train::ShuffleSampler;
use serde::{Deserialize, Serialize};

/// One injected failure: `node` dies at the start of `step` in `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Epoch of the failure (0-based; the paper injects after epoch 0 so
    /// the cache is fully populated).
    pub epoch: u32,
    /// Step within the epoch.
    pub step: u32,
    /// The victim.
    pub node: NodeId,
}

/// An ordered schedule of [`FaultEvent`]s — the simulator-side mirror of
/// a chaos campaign's kill schedule, so a randomized threaded campaign
/// can be cross-checked against the DES at no wall-clock cost.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// Plan from arbitrary events; stored sorted by (epoch, step).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| (e.epoch, e.step));
        FaultPlan { events }
    }

    /// Node kills at step 0 of each epoch — the shape a threaded chaos
    /// campaign mirrors (its events fire between read passes).
    pub fn from_kills(kills: &[(u32, NodeId)]) -> Self {
        Self::new(
            kills
                .iter()
                .map(|&(epoch, node)| FaultEvent {
                    epoch,
                    step: 0,
                    node,
                })
                .collect(),
        )
    }

    /// Append one event, keeping the schedule sorted.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.events.sort_by_key(|e| (e.epoch, e.step));
    }

    /// The schedule, sorted by (epoch, step).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Workload parameters for a simulated training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimWorkload {
    /// Training samples (files).
    pub samples: u32,
    /// Bytes per sample.
    pub sample_bytes: u64,
    /// Epochs to run (the paper runs 5).
    pub epochs: u32,
    /// Shuffle seed.
    pub seed: u64,
    /// Down-scaling factor relative to the full paper workload. Per-sample
    /// costs scale with the sample count automatically; *fixed* wall-clock
    /// costs (elastic resume, detection TTL) are divided by this factor so
    /// a 1/k-scale run keeps the full run's cost *ratios*. 1 = full scale.
    pub time_compression: u32,
}

impl SimWorkload {
    /// The paper's CosmoFlow workload, optionally scaled down by `factor`
    /// (sample count only; per-file size is preserved).
    pub fn cosmoflow(factor: u32) -> Self {
        let ds = ftc_train::Dataset::cosmoflow().scaled_down(factor.max(1));
        SimWorkload {
            samples: ds.train_samples,
            sample_bytes: ds.sample_bytes,
            epochs: 5,
            seed: 0xC05_30F10,
            time_compression: factor.max(1),
        }
    }
}

/// Result of one simulated training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Policy simulated.
    pub policy: FtPolicy,
    /// Initial node count.
    pub nodes: u32,
    /// Wall-clock per epoch (seconds), including rollbacks and resume
    /// overheads charged to the epoch they interrupted.
    pub epoch_times_s: Vec<f64>,
    /// End-to-end time.
    pub total_s: f64,
    /// Total PFS read operations (owner fetches + client redirects).
    pub pfs_reads: u64,
    /// RPC timeout windows paid.
    pub timeouts: u64,
    /// Epoch rollbacks (elastic restarts).
    pub rollbacks: u32,
    /// True when the job died (NoFT under failure).
    pub aborted: bool,
    /// Wall time of the first epoch in which a failure occurred (the
    /// "victim epoch"), if any failure was injected.
    pub victim_epoch_s: Option<f64>,
    /// Index of the first epoch in which a failure occurred.
    pub first_failure_epoch: Option<u32>,
    /// Discrete events processed (simulator introspection).
    pub events: u64,
}

impl SimReport {
    /// Mean wall time of the epochs at or after the first failure — the
    /// "time per epoch in the event of a failure" series of Fig. 6(a).
    /// `None` when no failure occurred.
    pub fn mean_post_failure_epoch_s(&self) -> Option<f64> {
        let first = self.first_failure_epoch? as usize;
        let tail = &self.epoch_times_s[first..];
        (!tail.is_empty()).then(|| tail.iter().sum::<f64>() / tail.len() as f64)
    }
}

enum OwnerView {
    /// Static `hash % N0` placement over the original membership.
    Static { n0: u32 },
    /// Hash ring: `current` excludes declared-dead nodes; `previous` is
    /// the view before the latest failure (what unconverged clients use).
    Ring {
        current: HashRing,
        previous: HashRing,
    },
}

/// The simulated cluster.
pub struct SimCluster {
    cal: SimCalibration,
    policy: FtPolicy,
    nodes: u32,
    view: OwnerView,
    /// Which node currently holds each file in its NVMe (HVAC caches one
    /// copy); `u32::MAX` = not cached anywhere.
    cached_by: Vec<u32>,
    /// Precomputed placement hash per file (the hash of its canonical
    /// path, identical to what real clients compute per read).
    file_hashes: Vec<u64>,
    dead: Vec<bool>,
    /// Per-client consecutive-timeout counters against the latest victim.
    suspect: Vec<u32>,
    latest_victim: Option<u32>,
    pfs_reads: u64,
    timeouts: u64,
    /// TTL after time compression (set at `run`).
    ttl_eff_s: f64,
}

const NOT_CACHED: u32 = u32::MAX;

impl SimCluster {
    /// Fresh cluster of `nodes` nodes under `policy`.
    pub fn new(nodes: u32, policy: FtPolicy, samples: u32, cal: SimCalibration) -> Self {
        let cal2 = cal.clone();
        let view = match policy {
            FtPolicy::RingRecache => OwnerView::Ring {
                current: HashRing::with_nodes(nodes, cal.vnodes),
                previous: HashRing::with_nodes(nodes, cal.vnodes),
            },
            FtPolicy::NoFt | FtPolicy::PfsRedirect => OwnerView::Static { n0: nodes },
        };
        let file_hashes = (0..samples)
            .map(|f| ftc_hashring::hash::key_hash(&format!("train/sample_{f:07}.tfrecord")))
            .collect();
        SimCluster {
            cal,
            policy,
            nodes,
            view,
            cached_by: vec![NOT_CACHED; samples as usize],
            file_hashes,
            dead: vec![false; nodes as usize],
            suspect: vec![0; nodes as usize],
            latest_victim: None,
            pfs_reads: 0,
            timeouts: 0,
            ttl_eff_s: cal2.ttl_s,
        }
    }

    fn owner_current(&self, file: u32) -> u32 {
        let h = self.file_hashes[file as usize];
        match &self.view {
            OwnerView::Static { n0 } => (h % u64::from(*n0)) as u32,
            OwnerView::Ring { current, .. } => {
                current.owner_of_hash(h).map(|n| n.0).unwrap_or(NOT_CACHED)
            }
        }
    }

    fn owner_previous(&self, file: u32) -> u32 {
        let h = self.file_hashes[file as usize];
        match &self.view {
            OwnerView::Static { n0 } => (h % u64::from(*n0)) as u32,
            OwnerView::Ring { previous, .. } => {
                previous.owner_of_hash(h).map(|n| n.0).unwrap_or(NOT_CACHED)
            }
        }
    }

    fn mark_dead(&mut self, node: NodeId) {
        self.dead[node.index()] = true;
        self.latest_victim = Some(node.0);
        self.suspect.iter_mut().for_each(|c| *c = 0);
        // Cached copies on the dead NVMe are lost.
        for c in self.cached_by.iter_mut() {
            if *c == node.0 {
                *c = NOT_CACHED;
            }
        }
        if let OwnerView::Ring { current, previous } = &mut self.view {
            *previous = current.clone();
            let _ = current.remove_node(node);
        }
    }

    /// Simulate the full training run under a [`FaultPlan`].
    pub fn run_plan(self, workload: SimWorkload, plan: &FaultPlan) -> SimReport {
        self.run(workload, plan.events())
    }

    /// Simulate the full training run.
    pub fn run(mut self, workload: SimWorkload, faults: &[FaultEvent]) -> SimReport {
        let k = f64::from(workload.time_compression.max(1));
        self.ttl_eff_s = self.cal.ttl_s / k;
        let resume_eff_s = self.cal.resume_overhead_s / k;
        let sampler = ShuffleSampler::new(workload.samples, workload.seed);
        let mut q: EventQueue<u32> = EventQueue::new();
        let mut pending: Vec<FaultEvent> = faults.to_vec();
        let mut live: Vec<u32> = (0..self.nodes).collect();
        let mut epoch_times = Vec::with_capacity(workload.epochs as usize);
        let mut rollbacks = 0u32;
        let mut victim_epoch_s: Option<f64> = None;
        let mut first_failure_epoch: Option<u32> = None;
        let mut aborted = false;

        'epochs: for epoch in 0..workload.epochs {
            let order = sampler.epoch_order(epoch);
            let epoch_start = q.now();
            let mut epoch_had_failure = false;
            loop {
                let fault = pending
                    .iter()
                    .copied()
                    .find(|f| f.epoch == epoch && !self.dead[f.node.index()]);
                match self.run_attempt(&mut q, &order, workload.sample_bytes, epoch, &live, fault) {
                    AttemptOutcome::Completed => break,
                    AttemptOutcome::Failed { victim } => {
                        epoch_had_failure = true;
                        if self.policy == FtPolicy::NoFt {
                            // Baseline HVAC: job terminates on failure.
                            aborted = true;
                            epoch_times.push(to_secs(q.now() - epoch_start));
                            break 'epochs;
                        }
                        rollbacks += 1;
                        pending.retain(|f| !(f.epoch == epoch && f.node == victim));
                        live.retain(|&n| n != victim.0);
                        if live.is_empty() {
                            aborted = true;
                            epoch_times.push(to_secs(q.now() - epoch_start));
                            break 'epochs;
                        }
                        // Elastic resume pause. The re-rendezvous also
                        // broadcasts the surviving membership, so every
                        // client restarts already knowing the victim is
                        // gone — detection windows are confined to the
                        // aborted attempt (without this, per-client
                        // timeout discovery would dwarf the overheads the
                        // paper reports; see EXPERIMENTS.md).
                        self.suspect
                            .iter_mut()
                            .for_each(|c| *c = self.cal.timeout_limit);
                        let resume = secs(resume_eff_s);
                        q.advance_to(q.now() + resume);
                    }
                }
            }
            let wall = to_secs(q.now() - epoch_start);
            epoch_times.push(wall);
            if epoch_had_failure && victim_epoch_s.is_none() {
                victim_epoch_s = Some(wall);
                first_failure_epoch = Some(epoch);
            }
        }

        SimReport {
            policy: self.policy,
            nodes: self.nodes,
            total_s: to_secs(q.now()),
            epoch_times_s: epoch_times,
            pfs_reads: self.pfs_reads,
            timeouts: self.timeouts,
            rollbacks,
            aborted,
            victim_epoch_s,
            first_failure_epoch,
            events: q.processed(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_attempt(
        &mut self,
        q: &mut EventQueue<u32>,
        order: &[u32],
        sample_bytes: u64,
        _epoch: u32,
        live: &[u32],
        fault: Option<FaultEvent>,
    ) -> AttemptOutcome {
        let world = live.len() as u32;
        let n = order.len();
        let w = world as usize;
        let base = n / w;
        let extra = n % w;
        // Shard boundaries over the shared epoch order (identical math to
        // ShuffleSampler::shard, without re-deriving the permutation).
        let shard_bounds: Vec<(usize, usize)> = (0..w)
            .map(|r| {
                let start = r * base + r.min(extra);
                let len = base + usize::from(r < extra);
                (start, start + len)
            })
            .collect();
        let max_shard = shard_bounds.iter().map(|&(s, e)| e - s).max().unwrap_or(0) as u32;
        let steps = max_shard.div_ceil(self.cal.per_rank_batch).max(1);
        let per = self.cal.per_rank_batch as usize;

        for step in 0..steps {
            // Failure fires at the start of its step: the victim's NVMe
            // contents vanish and its server goes silent mid-step.
            let mut victim: Option<NodeId> = None;
            if let Some(f) = fault {
                if step == f.step.min(steps - 1) {
                    self.mark_dead(f.node);
                    victim = Some(f.node);
                }
            }

            // Pass 1: per-rank read composition for this step.
            let mut rank_costs: Vec<RankStepCost> = Vec::with_capacity(w);
            for (ri, &rank) in live.iter().enumerate() {
                if Some(NodeId(rank)) == victim {
                    // The dying rank does no useful work this step.
                    rank_costs.push(RankStepCost::default());
                    continue;
                }
                let (s0, s1) = shard_bounds[ri];
                let shard_len = s1 - s0;
                let lo = (step as usize * per).min(shard_len);
                let hi = ((step as usize + 1) * per).min(shard_len);
                let mut cost = RankStepCost::default();
                for &file in &order[s0 + lo..s0 + hi] {
                    self.account_read(rank, file, &mut cost);
                }
                rank_costs.push(cost);
            }

            // Pass 2: PFS contention across the step.
            let readers = rank_costs
                .iter()
                .filter(|c| c.pfs_ops + c.pfs_direct_ops > 0)
                .count() as u32;
            let pfs = crate::resource::SharedBandwidth {
                agg_bps: self.cal.pfs.agg_bandwidth_bps,
                metadata_lat_s: self.cal.pfs_meta_lat_s(world),
            };
            let step_start = q.now();
            for (ri, cost) in rank_costs.iter().enumerate() {
                let io = cost.nvme_local as f64 * self.cal.local_read_s(sample_bytes)
                    + cost.nvme_remote as f64 * self.cal.remote_read_s(sample_bytes)
                    + pfs.reader_time_s(cost.pfs_ops, sample_bytes, readers)
                    + self.cal.pfs_direct_read_penalty
                        * pfs.reader_time_s(cost.pfs_direct_ops, sample_bytes, readers)
                    + cost.ttl_windows as f64 * self.ttl_eff_s
                    + cost.reads as f64 * self.ft_bookkeeping_s();
                // The input pipeline prefetches: loading overlaps the
                // previous step's compute, so I/O only surfaces when it
                // exceeds the compute time — which is exactly how HVAC
                // turns DL from I/O-bound (PFS) to compute-bound (NVMe),
                // and why a single slow PFS reader stalls the whole step.
                let step_time = io.max(self.cal.compute_per_step_s);
                q.schedule_at(step_start + secs(step_time), ri as u32);
            }
            // Barrier: wait for every rank's step completion, then the
            // collective.
            let mut last = step_start;
            for _ in 0..w {
                // One completion was scheduled per rank just above; if the
                // queue runs dry the barrier is already satisfied.
                let Some((t, _)) = q.pop() else { break };
                last = t;
            }
            q.advance_to(last + secs(self.cal.allreduce_s(world)));

            if let Some(v) = victim {
                // The allreduce discovers the lost rank; the attempt ends.
                return AttemptOutcome::Failed { victim: v };
            }
        }
        AttemptOutcome::Completed
    }

    /// FT bookkeeping cost per read: the "additional conditional checks,
    /// timeout monitoring, and mutex locks" that make NoFT consistently
    /// (slightly) fastest in Fig. 5(a).
    fn ft_bookkeeping_s(&self) -> f64 {
        match self.policy {
            FtPolicy::NoFt => 0.0,
            _ => 100e-6,
        }
    }

    fn account_read(&mut self, client: u32, file: u32, cost: &mut RankStepCost) {
        cost.reads += 1;
        let f = file as usize;

        // Does this client still believe the latest victim is alive?
        let converged = match self.latest_victim {
            None => true,
            Some(_) => self.suspect[client as usize] >= self.cal.timeout_limit,
        };

        let owner = if converged {
            self.owner_current(file)
        } else {
            self.owner_previous(file)
        };

        if owner != NOT_CACHED && !self.dead[owner as usize] {
            if self.cached_by[f] == owner {
                if owner == client {
                    cost.nvme_local += 1;
                } else {
                    cost.nvme_remote += 1;
                }
            } else {
                // Owner miss: it fetches from the PFS, serves, recaches.
                cost.pfs_ops += 1;
                self.pfs_reads += 1;
                self.cached_by[f] = owner;
            }
            return;
        }

        // Owner is dead (or the placement is empty): this read times out
        // against the silent node unless the client has already converged.
        if !converged {
            cost.ttl_windows += 1;
            self.timeouts += 1;
            self.suspect[client as usize] += 1;
            // The affected request is redirected to the PFS (both §IV-A
            // and the artifact's ring client do this during detection) —
            // a client-direct read.
            cost.pfs_direct_ops += 1;
            self.pfs_reads += 1;
            return;
        }

        match self.policy {
            FtPolicy::PfsRedirect | FtPolicy::NoFt => {
                // Static placement: the dead owner's keys divert to the
                // PFS on every access, every epoch — client-direct reads.
                cost.pfs_direct_ops += 1;
                self.pfs_reads += 1;
            }
            FtPolicy::RingRecache => {
                // Converged ring clients can only reach here if every node
                // is dead; nothing to charge beyond the redirect.
                cost.pfs_direct_ops += 1;
                self.pfs_reads += 1;
            }
        }
    }
}

#[derive(Default, Clone, Copy)]
struct RankStepCost {
    reads: u64,
    nvme_local: u64,
    nvme_remote: u64,
    /// Server-mediated PFS fetches (miss/recache path).
    pfs_ops: u64,
    /// Client-direct PFS reads (redirect path; carries the direct-read
    /// penalty).
    pfs_direct_ops: u64,
    ttl_windows: u64,
}

enum AttemptOutcome {
    Completed,
    Failed { victim: NodeId },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cal() -> SimCalibration {
        let mut c = SimCalibration::frontier();
        c.resume_overhead_s = 1.0;
        c.ttl_s = 0.2;
        c
    }

    fn workload(samples: u32) -> SimWorkload {
        SimWorkload {
            samples,
            sample_bytes: 2_200_000,
            epochs: 3,
            seed: 7,
            time_compression: 1,
        }
    }

    fn run(nodes: u32, policy: FtPolicy, faults: &[FaultEvent]) -> SimReport {
        SimCluster::new(nodes, policy, 1024, small_cal()).run(workload(1024), faults)
    }

    #[test]
    fn first_epoch_is_slowest_cold() {
        let r = run(16, FtPolicy::RingRecache, &[]);
        assert!(!r.aborted);
        assert_eq!(r.epoch_times_s.len(), 3);
        assert!(
            r.epoch_times_s[0] > 1.2 * r.epoch_times_s[1],
            "cold epoch {:.2}s vs warm {:.2}s",
            r.epoch_times_s[0],
            r.epoch_times_s[1]
        );
        // Cold epoch fetched every file exactly once.
        assert_eq!(r.pfs_reads, 1024);
        assert_eq!(r.timeouts, 0);
    }

    #[test]
    fn more_nodes_is_faster() {
        let r16 = run(16, FtPolicy::RingRecache, &[]);
        let r64 = run(64, FtPolicy::RingRecache, &[]);
        assert!(
            r64.total_s < r16.total_s,
            "64 nodes {:.1}s vs 16 nodes {:.1}s",
            r64.total_s,
            r16.total_s
        );
    }

    #[test]
    fn noft_without_failure_is_fastest() {
        let noft = run(16, FtPolicy::NoFt, &[]);
        let pfs = run(16, FtPolicy::PfsRedirect, &[]);
        let ring = run(16, FtPolicy::RingRecache, &[]);
        assert!(noft.total_s <= pfs.total_s);
        assert!(noft.total_s <= ring.total_s);
        // …but the FT overhead is small (within a few percent).
        assert!(ring.total_s / noft.total_s < 1.1);
    }

    #[test]
    fn noft_aborts_on_failure() {
        let r = run(
            16,
            FtPolicy::NoFt,
            &[FaultEvent {
                epoch: 1,
                step: 2,
                node: NodeId(3),
            }],
        );
        assert!(r.aborted);
        assert!(r.epoch_times_s.len() < 3, "job dies in epoch 1");
    }

    #[test]
    fn ring_beats_pfs_redirect_under_failure() {
        let fault = [FaultEvent {
            epoch: 1,
            step: 0,
            node: NodeId(5),
        }];
        // Five epochs so the ring's one-time recache can amortize against
        // redirect's every-epoch PFS traffic, as in the paper's runs.
        let w = SimWorkload {
            samples: 1024,
            sample_bytes: 2_200_000,
            epochs: 5,
            seed: 7,
            time_compression: 1,
        };
        let ring =
            SimCluster::new(16, FtPolicy::RingRecache, w.samples, small_cal()).run(w, &fault);
        let pfs = SimCluster::new(16, FtPolicy::PfsRedirect, w.samples, small_cal()).run(w, &fault);
        assert!(!ring.aborted && !pfs.aborted);
        assert_eq!(ring.rollbacks, 1);
        assert_eq!(pfs.rollbacks, 1);
        assert!(
            ring.total_s < pfs.total_s,
            "ring {:.1}s must beat pfs-redirect {:.1}s",
            ring.total_s,
            pfs.total_s
        );
        // Redirect keeps paying the PFS every epoch; ring pays ~once.
        assert!(
            pfs.pfs_reads > ring.pfs_reads,
            "pfs_reads: redirect {} vs ring {}",
            pfs.pfs_reads,
            ring.pfs_reads
        );
    }

    #[test]
    fn ring_recache_pfs_traffic_is_bounded() {
        let fault = [FaultEvent {
            epoch: 1,
            step: 0,
            node: NodeId(2),
        }];
        let r = run(16, FtPolicy::RingRecache, &fault);
        // Cold epoch = 1024 reads; post-failure recaching may refetch at
        // most the lost files (~1024/16 ≈ 64) plus detection redirects.
        let post_failure = r.pfs_reads - 1024;
        assert!(
            post_failure < 200,
            "recache traffic should be ~lost-file count, got {post_failure}"
        );
        assert!(r.victim_epoch_s.is_some());
    }

    #[test]
    fn failure_epoch_is_the_victim_epoch() {
        let fault = [FaultEvent {
            epoch: 2,
            step: 1,
            node: NodeId(0),
        }];
        let r = run(8, FtPolicy::RingRecache, &fault);
        assert_eq!(r.victim_epoch_s, Some(r.epoch_times_s[2]));
        // The victim epoch includes the rollback + resume, so it is the
        // slowest warm epoch.
        assert!(r.epoch_times_s[2] > r.epoch_times_s[1]);
    }

    #[test]
    fn timeouts_only_after_failure() {
        let fault = [FaultEvent {
            epoch: 1,
            step: 0,
            node: NodeId(1),
        }];
        let healthy = run(8, FtPolicy::RingRecache, &[]);
        let faulty = run(8, FtPolicy::RingRecache, &fault);
        assert_eq!(healthy.timeouts, 0);
        assert!(faulty.timeouts > 0);
        // Each surviving client converges after timeout_limit windows.
        let cal = small_cal();
        assert!(
            faulty.timeouts <= u64::from(7 * cal.timeout_limit) + 7,
            "timeouts {} should be ≈ survivors × limit",
            faulty.timeouts
        );
    }

    #[test]
    fn multiple_failures_accumulate_rollbacks() {
        let faults = [
            FaultEvent {
                epoch: 1,
                step: 0,
                node: NodeId(1),
            },
            FaultEvent {
                epoch: 2,
                step: 3,
                node: NodeId(4),
            },
        ];
        let r = run(16, FtPolicy::RingRecache, &faults);
        assert!(!r.aborted);
        assert_eq!(r.rollbacks, 2);
    }

    #[test]
    fn deterministic() {
        let fault = [FaultEvent {
            epoch: 1,
            step: 2,
            node: NodeId(3),
        }];
        let a = run(16, FtPolicy::RingRecache, &fault);
        let b = run(16, FtPolicy::RingRecache, &fault);
        assert_eq!(a.total_s, b.total_s);
        assert_eq!(a.pfs_reads, b.pfs_reads);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn fault_plan_sorts_and_drives_run() {
        let plan = FaultPlan::new(vec![
            FaultEvent {
                epoch: 2,
                step: 1,
                node: NodeId(4),
            },
            FaultEvent {
                epoch: 1,
                step: 0,
                node: NodeId(1),
            },
        ]);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.events()[0].epoch, 1, "plan must be sorted");
        assert!(!plan.is_empty());
        let r = SimCluster::new(16, FtPolicy::RingRecache, 1024, small_cal())
            .run_plan(workload(1024), &plan);
        assert!(!r.aborted);
        assert_eq!(r.rollbacks, 2);
        assert_eq!(FaultPlan::from_kills(&[(1, NodeId(1))]).events()[0].step, 0);
    }

    #[test]
    fn cosmoflow_workload_scaling() {
        let w = SimWorkload::cosmoflow(512);
        assert_eq!(w.samples, 1024);
        assert_eq!(w.epochs, 5);
        assert!(w.sample_bytes > 2_000_000);
    }
}
