//! # ftc-sim — the discrete-event cluster simulator
//!
//! The paper's evaluation ran CosmoFlow on 64–1024 Frontier nodes; this
//! crate reruns those experiments on one machine by driving the *same*
//! placement/detection/policy logic as the threaded cluster over
//! calibrated cost models with a virtual clock:
//!
//! * [`engine`] — deterministic event queue + simulated time;
//! * [`resource`] — FIFO devices and the processor-shared PFS pipe;
//! * [`calibration`] — every constant an experiment depends on, pinned to
//!   Table II / §V-A where the paper specifies it;
//! * [`cluster`] — batch-synchronous training over the simulated cache,
//!   with fault injection, timeout-window detection, elastic rollback;
//! * [`experiment`] — the Figure 5 / 6(a) / 6(b) sweeps and the placement
//!   disruption ablation.
//!
//! ```
//! use ftc_sim::{SimCluster, SimWorkload, SimCalibration, FaultEvent};
//! use ftc_core::FtPolicy;
//! use ftc_hashring::NodeId;
//!
//! let workload = SimWorkload {
//!     samples: 1024, sample_bytes: 2_200_000, epochs: 3, seed: 1, time_compression: 1,
//! };
//! let report = SimCluster::new(16, FtPolicy::RingRecache, workload.samples,
//!                              SimCalibration::frontier())
//!     .run(workload, &[FaultEvent { epoch: 1, step: 0, node: NodeId(3) }]);
//! assert!(!report.aborted);
//! assert_eq!(report.rollbacks, 1);
//! ```

#![warn(missing_docs)]

pub mod calibration;
pub mod cluster;
pub mod engine;
pub mod experiment;
pub mod resource;

pub use calibration::SimCalibration;
pub use cluster::{FaultEvent, FaultPlan, SimCluster, SimReport, SimWorkload};
pub use engine::{secs, to_secs, EventQueue, SimTime, SEC};
pub use experiment::{
    fig5, fig6a, fig6b, placement_disruption, random_faults, DisruptionRow, Fig5Cell, Fig6aRow,
    Fig6bRow, PAPER_NODE_COUNTS, PAPER_VNODE_COUNTS,
};
pub use resource::{FifoResource, SharedBandwidth};
