//! The single calibration point for every simulated experiment.
//!
//! Hardware constants come from Table II and §V-A of the paper (NVMe
//! bandwidths, Slingshot link, node counts); workload constants
//! (compute-per-step, allreduce cost, elastic-resume overhead, detector
//! tuning) are free parameters chosen so the *shape* of Figures 5–6
//! matches the published curves. Everything an experiment depends on is a
//! named field here — EXPERIMENTS.md documents the chosen values and the
//! sensitivity of each conclusion to them.

use ftc_net::LatencyModel;
use ftc_storage::{PfsModel, TierCost};
use serde::{Deserialize, Serialize};

/// All constants the cluster simulator consumes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimCalibration {
    /// Node-local NVMe tier (Table II: 8 GB/s read / 4 GB/s write).
    pub nvme: TierCost,
    /// Shared PFS (Orion) under a many-small-file DL read pattern.
    pub pfs: PfsModel,
    /// Slingshot link model (one-way).
    pub net: LatencyModel,
    /// GPU compute time per step, seconds (3D-CNN forward+backward on a
    /// micro-batch; sized so cached-epoch I/O is a modest fraction, as on
    /// the real system once HVAC removes the bottleneck).
    pub compute_per_step_s: f64,
    /// Allreduce cost: `alpha * log2(N) + beta` seconds.
    pub allreduce_alpha_s: f64,
    /// Allreduce fixed term, seconds.
    pub allreduce_beta_s: f64,
    /// Per-RPC TTL used by the failure detector (seconds).
    pub ttl_s: f64,
    /// Consecutive timeouts before a client declares a node failed.
    pub timeout_limit: u32,
    /// Horovod-elastic resume overhead per rollback, seconds — the fixed
    /// cost §V-B1 identifies as dominant at high node counts.
    pub resume_overhead_s: f64,
    /// MDS contention scale: the effective per-open metadata latency is
    /// `metadata_lat_s * (1 + world / this)` — "metadata lock contention
    /// arises when multiple processes access metadata simultaneously"
    /// (§II-A), so the cost of an open grows with concurrent clients.
    pub pfs_meta_clients_scale: f64,
    /// Cost multiplier for *client-direct* PFS reads (the §IV-A redirect
    /// path and the suspect-window redirects) relative to a server-side
    /// HVAC fetch. The HVAC server's PFS path is an optimized bulk
    /// fetch feeding the data mover; a redirected client read is a raw
    /// intercepted POSIX read from a process that is simultaneously
    /// feeding GPUs — measured on Frontier to be several times slower for
    /// the same file. This is the straggler term of §V-B1.
    pub pfs_direct_read_penalty: f64,
    /// Micro-batch size per rank per step.
    pub per_rank_batch: u32,
    /// Virtual nodes per physical node on the hash ring.
    pub vnodes: u32,
}

impl SimCalibration {
    /// Frontier-flavored defaults (see module docs for provenance).
    pub fn frontier() -> Self {
        SimCalibration {
            nvme: TierCost {
                op_lat_s: 100e-6,
                read_bps: 8e9,
                write_bps: 4e9,
            },
            pfs: PfsModel {
                metadata_lat_s: 5e-3,
                // Orion's small-file effective aggregate for one job —
                // far below the multi-TB/s sequential peak.
                agg_bandwidth_bps: 20e9,
            },
            net: LatencyModel {
                base_s: 10e-6,
                bandwidth_bps: 25e9,
                jitter_frac: 0.0, // determinism; jitter adds nothing at batch granularity
            },
            compute_per_step_s: 0.020,
            allreduce_alpha_s: 0.002,
            allreduce_beta_s: 0.003,
            ttl_s: 0.5,
            timeout_limit: 3,
            resume_overhead_s: 1.5,
            pfs_meta_clients_scale: 224.0,
            pfs_direct_read_penalty: 2.4,
            per_rank_batch: 4,
            vnodes: 100,
        }
    }

    /// One-way network cost for a payload of `bytes`.
    #[inline]
    pub fn net_one_way_s(&self, bytes: u64) -> f64 {
        self.net.cost_s(bytes as usize)
    }

    /// Cost of reading `bytes` from the *local* NVMe.
    #[inline]
    pub fn local_read_s(&self, bytes: u64) -> f64 {
        self.nvme.read_cost_s(bytes)
    }

    /// Cost of reading `bytes` from a *remote* node's NVMe: request out,
    /// NVMe read at the owner, data back.
    #[inline]
    pub fn remote_read_s(&self, bytes: u64) -> f64 {
        self.net_one_way_s(64) + self.nvme.read_cost_s(bytes) + self.net_one_way_s(bytes)
    }

    /// Allreduce cost at world size `n`.
    #[inline]
    pub fn allreduce_s(&self, n: u32) -> f64 {
        self.allreduce_alpha_s * f64::from(n.max(1)).log2() + self.allreduce_beta_s
    }

    /// Effective per-open PFS metadata latency with `clients` concurrent
    /// clients hammering the MDS.
    #[inline]
    pub fn pfs_meta_lat_s(&self, clients: u32) -> f64 {
        self.pfs.metadata_lat_s * (1.0 + f64::from(clients) / self.pfs_meta_clients_scale)
    }
}

impl Default for SimCalibration {
    fn default() -> Self {
        Self::frontier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_read_costs_more_than_local() {
        let c = SimCalibration::frontier();
        let b = 2_200_000;
        assert!(c.remote_read_s(b) > c.local_read_s(b));
        // …but both are far below a contended PFS read.
        let pfs = c.pfs.read_cost_s(b, 512);
        assert!(
            pfs > 5.0 * c.remote_read_s(b),
            "pfs {pfs} vs remote {}",
            c.remote_read_s(b)
        );
    }

    #[test]
    fn allreduce_grows_with_world() {
        let c = SimCalibration::frontier();
        assert!(c.allreduce_s(1024) > c.allreduce_s(64));
        assert!(c.allreduce_s(1) >= c.allreduce_beta_s);
    }

    #[test]
    fn ttl_exceeds_longest_ordinary_latency() {
        // §IV-A: "The TTL parameter only needs to be greater than the
        // longest observed latency" — with our costs the slowest ordinary
        // op is a contended PFS read at moderate concurrency; TTL must
        // exceed it so healthy traffic never trips the detector.
        let c = SimCalibration::frontier();
        let slowest = c.pfs_meta_lat_s(1024) + 2_200_000f64 / (c.pfs.agg_bandwidth_bps / 128.0);
        assert!(c.ttl_s > slowest, "ttl {} vs slowest {}", c.ttl_s, slowest);
    }

    #[test]
    fn metadata_contention_grows_with_clients() {
        let c = SimCalibration::frontier();
        assert!(c.pfs_meta_lat_s(1024) > 3.0 * c.pfs_meta_lat_s(64));
        assert!(c.pfs_meta_lat_s(0) >= c.pfs.metadata_lat_s);
    }

    #[test]
    fn serde_roundtrip_surface() {
        // Config structs must remain (de)serializable for experiment
        // manifests.
        let c = SimCalibration::frontier();
        let copy = c.clone();
        assert_eq!(c, copy);
    }
}
