//! Experiment sweeps that regenerate the paper's evaluation figures.
//!
//! Each function returns structured rows; the `ftc-bench` binaries print
//! them next to the paper's published values. Node counts, scale factors
//! and trial counts are parameters so the full paper-scale configuration
//! and fast CI-scale configurations share one code path.

use crate::calibration::SimCalibration;
use crate::cluster::{FaultEvent, SimCluster, SimReport, SimWorkload};
use ftc_core::FtPolicy;
use ftc_hashring::stats::TrialStats;
use ftc_hashring::{HashRing, NodeId, Placement};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// The node counts of Figures 5 and 6(a).
pub const PAPER_NODE_COUNTS: [u32; 5] = [64, 128, 256, 512, 1024];

/// The virtual-node counts of Figure 6(b).
pub const PAPER_VNODE_COUNTS: [u32; 6] = [1, 10, 50, 100, 500, 1000];

/// Generate the paper's fault plan: `count` single-node failures at
/// random points strictly after the first epoch ("node failures were
/// randomly injected after the completion of the first epoch", §V-A3),
/// with distinct victims. Steps are drawn from the first ~15 % of each
/// epoch: Horovod elastic reverts to the epoch start, and the modest
/// per-failure overheads the paper reports (12.5 % total at 64 nodes for
/// five failures) imply little work was lost per rollback.
pub fn random_faults(
    count: u32,
    nodes: u32,
    epochs: u32,
    steps_hint: u32,
    seed: u64,
) -> Vec<FaultEvent> {
    assert!(epochs >= 2, "failures are injected after epoch 0");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut victims: Vec<u32> = (0..nodes).collect();
    victims.shuffle(&mut rng);
    let step_cap = (steps_hint * 15 / 100).max(1);
    let mut faults: Vec<FaultEvent> = victims
        .into_iter()
        .take(count as usize)
        .map(|v| FaultEvent {
            epoch: rng.random_range(1..epochs),
            step: rng.random_range(0..step_cap),
            node: NodeId(v),
        })
        .collect();
    faults.sort_by_key(|f| (f.epoch, f.step));
    faults
}

/// One cell of Figure 5: a (nodes, policy) pair with and without
/// failures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Cell {
    /// Node count.
    pub nodes: u32,
    /// Policy.
    pub policy: FtPolicy,
    /// End-to-end time with no failures (Fig. 5(a)), seconds.
    pub no_failure_s: f64,
    /// End-to-end time with the 5-failure plan (Fig. 5(b)); `None` when
    /// the policy aborts (NoFT dies at its first failure).
    pub with_failures_s: Option<f64>,
    /// Failure overhead relative to the same policy's no-failure run.
    pub overhead_pct: Option<f64>,
    /// Full failure-run report (for deeper inspection).
    pub failure_report: Option<SimReport>,
}

/// Run the Figure 5 sweep: all three policies at each node count, without
/// failures and (for the FT policies) with 5 random single-node failures
/// injected after the first epoch.
pub fn fig5(
    node_counts: &[u32],
    workload: SimWorkload,
    cal: &SimCalibration,
    failures: u32,
    seed: u64,
) -> Vec<Fig5Cell> {
    let mut out = Vec::new();
    for &n in node_counts {
        let steps_hint = (workload.samples / (cal.per_rank_batch * n)).max(1);
        for policy in [FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache] {
            let clean =
                SimCluster::new(n, policy, workload.samples, cal.clone()).run(workload, &[]);
            let (with_failures_s, overhead_pct, failure_report) = if policy == FtPolicy::NoFt {
                // Baseline HVAC dies at the first failure: Fig. 5(b) draws
                // it as the dashed no-failure reference instead.
                (None, None, None)
            } else {
                let faults = random_faults(
                    failures,
                    n,
                    workload.epochs,
                    steps_hint,
                    seed ^ u64::from(n),
                );
                let r = SimCluster::new(n, policy, workload.samples, cal.clone())
                    .run(workload, &faults);
                let pct = 100.0 * (r.total_s - clean.total_s) / clean.total_s;
                (Some(r.total_s), Some(pct), Some(r))
            };
            out.push(Fig5Cell {
                nodes: n,
                policy,
                no_failure_s: clean.total_s,
                with_failures_s,
                overhead_pct,
                failure_report,
            });
        }
    }
    out
}

/// One row of Figure 6(a): per-epoch time in the event of a failure.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig6aRow {
    /// Node count.
    pub nodes: u32,
    /// A failure-free epoch's duration (steady-state warm epoch).
    pub no_failure_epoch_s: f64,
    /// Mean per-epoch time from the failure onward under PFS redirection
    /// (every post-failure epoch keeps paying the PFS).
    pub pfs_redirect_epoch_s: f64,
    /// Mean per-epoch time from the failure onward under hash-ring NVMe
    /// recaching (only the recache epoch pays; later epochs are clean).
    pub nvme_recache_epoch_s: f64,
}

/// Run the Figure 6(a) sweep: one failure early in epoch 2; compare the
/// mean per-epoch time from the failure onward across systems.
pub fn fig6a(
    node_counts: &[u32],
    workload: SimWorkload,
    cal: &SimCalibration,
    seed: u64,
) -> Vec<Fig6aRow> {
    assert!(
        workload.epochs >= 4,
        "need warm epochs before and after the victim epoch"
    );
    let mut out = Vec::new();
    for &n in node_counts {
        let mut rng = StdRng::seed_from_u64(seed ^ u64::from(n));
        let steps_hint = (workload.samples / (cal.per_rank_batch * n)).max(1);
        let fault = [FaultEvent {
            epoch: 2,
            step: rng.random_range(0..(steps_hint * 15 / 100).max(1)),
            node: NodeId(rng.random_range(0..n)),
        }];
        let clean = SimCluster::new(n, FtPolicy::RingRecache, workload.samples, cal.clone())
            .run(workload, &[]);
        // A steady-state warm epoch (last epoch of the clean run). The
        // epochs >= 4 assertion above guarantees all three runs produced
        // epoch timings and a post-failure window; skip the row (rather
        // than panic) if a future workload shape violates that.
        let (Some(&no_failure_epoch_s), Some(pfs_s), Some(ring_s)) = (
            clean.epoch_times_s.last(),
            SimCluster::new(n, FtPolicy::PfsRedirect, workload.samples, cal.clone())
                .run(workload, &fault)
                .mean_post_failure_epoch_s(),
            SimCluster::new(n, FtPolicy::RingRecache, workload.samples, cal.clone())
                .run(workload, &fault)
                .mean_post_failure_epoch_s(),
        ) else {
            continue;
        };
        out.push(Fig6aRow {
            nodes: n,
            no_failure_epoch_s,
            pfs_redirect_epoch_s: pfs_s,
            nvme_recache_epoch_s: ring_s,
        });
    }
    out
}

/// One row of Figure 6(b): load redistribution at a virtual-node count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6bRow {
    /// Virtual nodes per physical node.
    pub vnodes: u32,
    /// Receiver-node count across trials (mean/std/min/max).
    pub receivers: TrialStats,
    /// Mean files received per receiver node, across trials.
    pub files_per_receiver: TrialStats,
}

/// Run the Figure 6(b) simulation: `trials` random single-node failures
/// on a ring of `nodes` physical nodes holding `files` files, for each
/// virtual-node count; report how many nodes absorb the failed node's
/// files and how many files each absorbs. (The paper: 1024 nodes, 500
/// trials, 524,288 files.)
pub fn fig6b(
    vnode_counts: &[u32],
    nodes: u32,
    files: u32,
    trials: u32,
    seed: u64,
) -> Vec<Fig6bRow> {
    let file_hashes: Vec<u64> = (0..files)
        .map(|f| ftc_hashring::hash::key_hash(&format!("train/sample_{f:07}.tfrecord")))
        .collect();
    let mut out = Vec::new();
    for &v in vnode_counts {
        let ring = HashRing::with_nodes(nodes, v);
        // Group hashes by owner once; per-trial work is then proportional
        // to the failed node's holdings only.
        let mut by_owner: Vec<Vec<u64>> = vec![Vec::new(); nodes as usize];
        for &h in &file_hashes {
            if let Some(owner) = ring.owner_of_hash(h) {
                by_owner[owner.index()].push(h);
            }
        }
        let mut rng = StdRng::seed_from_u64(seed ^ (u64::from(v) << 20));
        let mut receivers_samples = Vec::with_capacity(trials as usize);
        let mut files_per_samples = Vec::with_capacity(trials as usize);
        for _ in 0..trials {
            let failed = NodeId(rng.random_range(0..nodes));
            let dist = ring.failover_distribution(failed, by_owner[failed.index()].iter().copied());
            let receivers = dist.len() as f64;
            receivers_samples.push(receivers);
            let lost: u64 = dist.values().sum();
            files_per_samples.push(if receivers > 0.0 {
                lost as f64 / receivers
            } else {
                0.0
            });
        }
        out.push(Fig6bRow {
            vnodes: v,
            receivers: TrialStats::from_samples(&receivers_samples),
            files_per_receiver: TrialStats::from_samples(&files_per_samples),
        });
    }
    out
}

/// Disruption comparison across placement strategies (the §IV-B
/// qualitative argument, quantified): fraction of keys whose owner
/// changes when one node fails.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DisruptionRow {
    /// Strategy name.
    pub strategy: String,
    /// Fraction of all keys that moved (0..1).
    pub moved_fraction: f64,
    /// Fraction owned by the failed node (the theoretical minimum).
    pub lost_fraction: f64,
}

/// Measure per-strategy disruption on a single node failure.
pub fn placement_disruption(nodes: u32, keys: u32, seed: u64) -> Vec<DisruptionRow> {
    use ftc_hashring::{
        ModuloPlacement, MultiHashPlacement, RangePartition, RebalanceMode, RendezvousPlacement,
    };
    let key_names: Vec<String> = (0..keys).map(|i| format!("k{i:06}")).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let failed = NodeId(rng.random_range(0..nodes));

    let strategies: Vec<Box<dyn Placement>> = vec![
        Box::new(HashRing::with_nodes(nodes, 100)),
        Box::new(ModuloPlacement::with_nodes(nodes)),
        Box::new(MultiHashPlacement::with_nodes(nodes)),
        Box::new(RangePartition::with_nodes(
            nodes,
            RebalanceMode::MergeNeighbor,
        )),
        Box::new(RangePartition::with_nodes(nodes, RebalanceMode::EvenSplit)),
        Box::new(RendezvousPlacement::with_nodes(nodes)),
    ];
    strategies
        .into_iter()
        .map(|mut s| {
            let before: Vec<_> = key_names.iter().map(|k| s.owner(k)).collect();
            let lost = before.iter().filter(|&&o| o == Some(failed)).count();
            let was_member = s.remove_node(failed).is_ok();
            debug_assert!(was_member, "failed node is a member");
            let moved = key_names
                .iter()
                .zip(&before)
                .filter(|(k, &b)| s.owner(k) != b)
                .count();
            DisruptionRow {
                strategy: s.strategy_name().to_string(),
                moved_fraction: moved as f64 / key_names.len() as f64,
                lost_fraction: lost as f64 / key_names.len() as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cal() -> SimCalibration {
        SimCalibration::frontier()
    }

    fn small_workload() -> SimWorkload {
        SimWorkload {
            samples: 2048,
            sample_bytes: 2_200_000,
            epochs: 5,
            seed: 5,
            time_compression: 1,
        }
    }

    #[test]
    fn random_faults_are_distinct_and_after_epoch0() {
        let faults = random_faults(5, 64, 5, 100, 9);
        assert_eq!(faults.len(), 5);
        let victims: std::collections::HashSet<_> = faults.iter().map(|f| f.node).collect();
        assert_eq!(victims.len(), 5, "distinct victims");
        assert!(faults.iter().all(|f| f.epoch >= 1 && f.epoch < 5));
        // Deterministic by seed.
        assert_eq!(faults, random_faults(5, 64, 5, 100, 9));
        assert_ne!(faults, random_faults(5, 64, 5, 100, 10));
    }

    #[test]
    fn fig5_shapes_hold_at_small_scale() {
        // Victim choice adds luck at toy scale (which files were lost);
        // the paper's orderings are asserted on seed-averaged runs.
        let mut sums = std::collections::HashMap::new();
        for seed in [77u64, 78, 79] {
            let cells = fig5(&[8, 16], small_workload(), &fast_cal(), 2, seed);
            assert_eq!(cells.len(), 6);
            for c in &cells {
                let e = sums
                    .entry((c.nodes, c.policy))
                    .or_insert((0.0f64, 0.0f64, 0usize));
                e.0 += c.no_failure_s;
                e.1 += c.with_failures_s.unwrap_or(0.0);
                e.2 += 1;
            }
            for n in [8u32, 16] {
                let get = |p: FtPolicy| {
                    cells
                        .iter()
                        .find(|c| c.nodes == n && c.policy == p)
                        .unwrap()
                };
                let noft = get(FtPolicy::NoFt);
                // 5(a): NoFT fastest clean; FT overhead small (clean runs
                // are deterministic, so these hold per seed).
                assert!(noft.no_failure_s <= get(FtPolicy::PfsRedirect).no_failure_s);
                assert!(noft.no_failure_s <= get(FtPolicy::RingRecache).no_failure_s);
                assert!(noft.with_failures_s.is_none());
                // Overheads positive for both FT policies.
                assert!(get(FtPolicy::PfsRedirect).overhead_pct.unwrap() > 0.0);
                assert!(get(FtPolicy::RingRecache).overhead_pct.unwrap() > 0.0);
            }
        }
        for n in [8u32, 16] {
            let ring = sums[&(n, FtPolicy::RingRecache)].1;
            let pfs = sums[&(n, FtPolicy::PfsRedirect)].1;
            assert!(
                ring < pfs,
                "seed-mean: ring {ring:.1}s must beat redirect {pfs:.1}s at n={n}"
            );
        }
        // More nodes -> faster clean runs.
        let c8 = sums[&(8, FtPolicy::NoFt)].0;
        let c16 = sums[&(16, FtPolicy::NoFt)].0;
        assert!(c16 < c8);
    }

    #[test]
    fn fig6a_ordering_holds() {
        // Seed-averaged for the same reason as the Fig. 5 test.
        let mut acc: std::collections::HashMap<u32, (f64, f64, f64)> = Default::default();
        for seed in [3u64, 4, 5, 6] {
            for r in fig6a(&[8, 16], small_workload(), &fast_cal(), seed) {
                let e = acc.entry(r.nodes).or_insert((0.0, 0.0, 0.0));
                e.0 += r.no_failure_epoch_s;
                e.1 += r.nvme_recache_epoch_s;
                e.2 += r.pfs_redirect_epoch_s;
            }
        }
        for (n, (clean, ring, pfs)) in acc {
            assert!(
                clean < ring,
                "post-failure epochs must cost more than clean ones at n={n}"
            );
            assert!(
                ring < pfs,
                "recache {ring:.2} must beat redirect {pfs:.2} at n={n}"
            );
        }
    }

    #[test]
    fn fig6b_receivers_grow_with_vnodes() {
        let rows = fig6b(&[1, 10, 100], 256, 8192, 50, 11);
        assert_eq!(rows.len(), 3);
        assert!(
            rows[0].receivers.mean < rows[1].receivers.mean,
            "1 vnode {} vs 10 vnodes {}",
            rows[0].receivers.mean,
            rows[1].receivers.mean
        );
        assert!(rows[1].receivers.mean < rows[2].receivers.mean);
        // Files per receiver shrinks as receivers grow.
        assert!(rows[2].files_per_receiver.mean < rows[0].files_per_receiver.mean);
    }

    #[test]
    fn disruption_ranking_matches_section_iv() {
        let rows = placement_disruption(32, 4000, 1);
        let get = |name: &str| {
            rows.iter()
                .find(|r| r.strategy == name)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        // Minimal-movement strategies move exactly what was lost.
        for name in ["hash-ring", "multi-hash", "rendezvous", "range-merge"] {
            let r = get(name);
            assert!(
                (r.moved_fraction - r.lost_fraction).abs() < 1e-9,
                "{name} moved {} vs lost {}",
                r.moved_fraction,
                r.lost_fraction
            );
        }
        // Modulo reshuffles nearly everything.
        assert!(get("modulo").moved_fraction > 0.5);
        // Even-split moves more than minimal.
        assert!(get("range-even").moved_fraction > get("range-merge").moved_fraction);
    }
}
