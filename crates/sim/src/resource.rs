//! Contended-resource models for the simulator.
//!
//! [`FifoResource`] serializes work at a fixed rate (an NVMe device or a
//! NIC send path); [`SharedBandwidth`] divides an aggregate pipe equally
//! among concurrent readers (the PFS under §II-A's metadata + bandwidth
//! contention).

use crate::engine::SimTime;

/// A single-server FIFO resource: requests queue and are served at
/// `rate_bps`, with `op_lat_s` fixed overhead each.
#[derive(Debug, Clone)]
pub struct FifoResource {
    rate_bps: f64,
    op_lat_s: f64,
    next_free: SimTime,
    busy: SimTime,
    served: u64,
}

impl FifoResource {
    /// Resource serving at `rate_bps` with `op_lat_s` per-op latency.
    pub fn new(rate_bps: f64, op_lat_s: f64) -> Self {
        assert!(rate_bps > 0.0);
        FifoResource {
            rate_bps,
            op_lat_s,
            next_free: 0,
            busy: 0,
            served: 0,
        }
    }

    /// Enqueue a `bytes`-sized request arriving at `now`; returns its
    /// completion time (after any queueing).
    pub fn submit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let service = crate::engine::secs(self.op_lat_s + bytes as f64 / self.rate_bps);
        let start = now.max(self.next_free);
        let done = start.saturating_add(service);
        self.next_free = done;
        self.busy = self.busy.saturating_add(service);
        self.served += 1;
        done
    }

    /// When the resource next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Total busy time accumulated.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Requests served.
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            (self.busy.min(horizon)) as f64 / horizon as f64
        }
    }
}

/// Equal-share aggregate pipe: `r` concurrent readers each see
/// `agg_bps / r`, and each open pays `metadata_lat_s`.
#[derive(Debug, Clone, Copy)]
pub struct SharedBandwidth {
    /// Aggregate deliverable bandwidth, bytes/second.
    pub agg_bps: f64,
    /// Per-open metadata latency, seconds.
    pub metadata_lat_s: f64,
}

impl SharedBandwidth {
    /// Time for one reader to pull `reads` files of `bytes` each, while
    /// `concurrent` readers (including itself) share the pipe.
    ///
    /// Processor-sharing approximation at batch granularity: each of this
    /// reader's files transfers at `agg/concurrent`, plus metadata per
    /// open.
    pub fn reader_time_s(&self, reads: u64, bytes: u64, concurrent: u32) -> f64 {
        if reads == 0 {
            return 0.0;
        }
        let share = self.agg_bps / f64::from(concurrent.max(1));
        reads as f64 * (self.metadata_lat_s + bytes as f64 / share)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{secs, SEC};

    #[test]
    fn fifo_serializes_back_to_back() {
        let mut r = FifoResource::new(1e9, 0.0); // 1 GB/s
        let d1 = r.submit(0, 500_000_000); // 0.5 s
        let d2 = r.submit(0, 500_000_000); // queued behind
        assert_eq!(d1, SEC / 2);
        assert_eq!(d2, SEC);
        assert_eq!(r.served(), 2);
        assert_eq!(r.busy_time(), SEC);
    }

    #[test]
    fn fifo_idle_gap_not_counted_busy() {
        let mut r = FifoResource::new(1e9, 0.0);
        r.submit(0, 1_000_000_000); // done at 1 s
        let d = r.submit(5 * SEC, 1_000_000_000); // arrives later
        assert_eq!(d, 6 * SEC);
        assert_eq!(r.busy_time(), 2 * SEC);
        assert!((r.utilization(10 * SEC) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn fifo_op_latency_applies_per_request() {
        let mut r = FifoResource::new(1e12, 0.001);
        let d = r.submit(0, 0);
        assert_eq!(d, secs(0.001));
    }

    #[test]
    fn shared_bandwidth_divides_evenly() {
        let p = SharedBandwidth {
            agg_bps: 100e9,
            metadata_lat_s: 0.0,
        };
        let alone = p.reader_time_s(10, 1_000_000, 1);
        let crowded = p.reader_time_s(10, 1_000_000, 100);
        assert!((crowded / alone - 100.0).abs() < 1e-9);
        assert_eq!(p.reader_time_s(0, 1_000_000, 50), 0.0);
    }

    #[test]
    fn shared_bandwidth_metadata_floor() {
        let p = SharedBandwidth {
            agg_bps: 1e12,
            metadata_lat_s: 0.002,
        };
        let t = p.reader_time_s(5, 1, 1);
        assert!(t >= 0.01, "5 opens pay 5 metadata latencies: {t}");
    }
}
