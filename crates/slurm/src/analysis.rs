//! The failure-analysis pipeline: Table I, Figure 1 and Figure 2 of the
//! paper, as functions over job records.

use crate::generator::{ELAPSED_BUCKETS, NODE_BUCKETS};
use crate::model::{JobRecord, JobState};
use serde::{Deserialize, Serialize};

/// Table I: the failure census.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureCensus {
    /// Analyzable jobs (cancelled excluded).
    pub total_jobs: u64,
    /// All failures.
    pub total_failures: u64,
    /// `NODE_FAIL` count.
    pub node_fail: u64,
    /// `TIMEOUT` count.
    pub timeout: u64,
    /// `JOB_FAIL` count.
    pub job_fail: u64,
}

impl FailureCensus {
    /// Failure share of all jobs (paper: 25.04 %).
    pub fn overall_failure_ratio(&self) -> f64 {
        self.total_failures as f64 / self.total_jobs as f64
    }

    /// A state's share of failures.
    pub fn failure_ratio(&self, state: JobState) -> f64 {
        let n = match state {
            JobState::NodeFail => self.node_fail,
            JobState::Timeout => self.timeout,
            JobState::JobFail => self.job_fail,
            _ => 0,
        };
        n as f64 / self.total_failures as f64
    }

    /// Node Fail + Timeout share of failures — what the paper treats as
    /// node failures ("together account for about half of all failures").
    pub fn node_failure_share(&self) -> f64 {
        (self.node_fail + self.timeout) as f64 / self.total_failures as f64
    }
}

/// Build Table I from records (cancellations excluded, as in §III).
pub fn census(records: &[JobRecord]) -> FailureCensus {
    let mut c = FailureCensus {
        total_jobs: 0,
        total_failures: 0,
        node_fail: 0,
        timeout: 0,
        job_fail: 0,
    };
    for r in records {
        match r.state {
            JobState::Cancelled => continue,
            JobState::Completed => c.total_jobs += 1,
            JobState::NodeFail => {
                c.total_jobs += 1;
                c.total_failures += 1;
                c.node_fail += 1;
            }
            JobState::Timeout => {
                c.total_jobs += 1;
                c.total_failures += 1;
                c.timeout += 1;
            }
            JobState::JobFail => {
                c.total_jobs += 1;
                c.total_failures += 1;
                c.job_fail += 1;
            }
        }
    }
    c
}

/// One week's mean elapsed-before-failure, per type (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeeklyElapsed {
    /// Week index.
    pub week: u32,
    /// Mean elapsed minutes of `JOB_FAIL` jobs (None if none that week).
    pub job_fail: Option<f64>,
    /// Mean elapsed minutes of `TIMEOUT` jobs.
    pub timeout: Option<f64>,
    /// Mean elapsed minutes of `NODE_FAIL` jobs.
    pub node_fail: Option<f64>,
    /// Mean over all failed jobs that week.
    pub overall: Option<f64>,
}

/// Fig. 1: weekly mean elapsed time of failed jobs over the window.
pub fn weekly_elapsed(records: &[JobRecord], weeks: u32) -> Vec<WeeklyElapsed> {
    let mut acc = vec![[(0f64, 0u64); 3]; weeks as usize];
    for r in records {
        let slot = match r.state {
            JobState::JobFail => 0usize,
            JobState::Timeout => 1,
            JobState::NodeFail => 2,
            _ => continue,
        };
        if (r.week as usize) < acc.len() {
            acc[r.week as usize][slot].0 += r.elapsed_min;
            acc[r.week as usize][slot].1 += 1;
        }
    }
    acc.iter()
        .enumerate()
        .map(|(w, rows)| {
            let mean = |i: usize| {
                let (s, n) = rows[i];
                (n > 0).then(|| s / n as f64)
            };
            let total_s: f64 = rows.iter().map(|&(s, _)| s).sum();
            let total_n: u64 = rows.iter().map(|&(_, n)| n).sum();
            WeeklyElapsed {
                week: w as u32,
                job_fail: mean(0),
                timeout: mean(1),
                node_fail: mean(2),
                overall: (total_n > 0).then(|| total_s / total_n as f64),
            }
        })
        .collect()
}

/// Mean elapsed of all failures in the window — the red dashed line of
/// Fig. 1 (~75 minutes).
pub fn overall_mean_elapsed(records: &[JobRecord]) -> Option<f64> {
    let failures: Vec<f64> = records
        .iter()
        .filter(|r| r.state.is_failure())
        .map(|r| r.elapsed_min)
        .collect();
    (!failures.is_empty()).then(|| failures.iter().sum::<f64>() / failures.len() as f64)
}

/// Failure-type shares within one bucket (Fig. 2 rows).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BucketShares {
    /// Bucket label, e.g. `"7750-9408"`.
    pub label: String,
    /// Failures in the bucket.
    pub failures: u64,
    /// `JOB_FAIL` share of the bucket's failures.
    pub job_fail: f64,
    /// `TIMEOUT` share.
    pub timeout: f64,
    /// `NODE_FAIL` share.
    pub node_fail: f64,
}

fn shares_over<F: Fn(&JobRecord) -> Option<usize>>(
    records: &[JobRecord],
    buckets: &[(u32, u32)],
    index_of: F,
) -> Vec<BucketShares> {
    let mut counts = vec![[0u64; 3]; buckets.len()];
    for r in records {
        if !r.state.is_failure() {
            continue;
        }
        let Some(b) = index_of(r) else { continue };
        let slot = match r.state {
            JobState::JobFail => 0usize,
            JobState::Timeout => 1,
            JobState::NodeFail => 2,
            _ => unreachable!("is_failure filtered"),
        };
        counts[b][slot] += 1;
    }
    buckets
        .iter()
        .zip(counts)
        .map(|(&(lo, hi), row)| {
            let total: u64 = row.iter().sum();
            let f = |i: usize| {
                if total == 0 {
                    0.0
                } else {
                    row[i] as f64 / total as f64
                }
            };
            BucketShares {
                label: format!("{lo}-{hi}"),
                failures: total,
                job_fail: f(0),
                timeout: f(1),
                node_fail: f(2),
            }
        })
        .collect()
}

/// Fig. 2(a): failure-type distribution by node-count bucket.
pub fn by_node_count(records: &[JobRecord]) -> Vec<BucketShares> {
    shares_over(records, &NODE_BUCKETS, |r| {
        NODE_BUCKETS
            .iter()
            .position(|&(lo, hi)| r.node_count >= lo && r.node_count <= hi)
            .or(Some(NODE_BUCKETS.len() - 1))
    })
}

/// Fig. 2(b): failure-type distribution by elapsed-time bucket.
pub fn by_elapsed(records: &[JobRecord]) -> Vec<BucketShares> {
    shares_over(records, &ELAPSED_BUCKETS, |r| {
        let m = r.elapsed_min as u32;
        ELAPSED_BUCKETS
            .iter()
            .position(|&(lo, hi)| m >= lo && m <= hi)
            .or(Some(ELAPSED_BUCKETS.len() - 1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(state: JobState, week: u32, nodes: u32, elapsed: f64) -> JobRecord {
        JobRecord {
            id: 0,
            week,
            node_count: nodes,
            elapsed_min: elapsed,
            state,
        }
    }

    #[test]
    fn census_excludes_cancelled() {
        let records = vec![
            rec(JobState::Completed, 0, 1, 10.0),
            rec(JobState::JobFail, 0, 1, 10.0),
            rec(JobState::Timeout, 0, 1, 10.0),
            rec(JobState::NodeFail, 0, 1, 10.0),
            rec(JobState::Cancelled, 0, 1, 10.0),
        ];
        let c = census(&records);
        assert_eq!(c.total_jobs, 4);
        assert_eq!(c.total_failures, 3);
        assert_eq!(c.node_fail, 1);
        assert!((c.overall_failure_ratio() - 0.75).abs() < 1e-12);
        assert!((c.failure_ratio(JobState::JobFail) - 1.0 / 3.0).abs() < 1e-12);
        assert!((c.node_failure_share() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weekly_means() {
        let records = vec![
            rec(JobState::JobFail, 0, 1, 10.0),
            rec(JobState::JobFail, 0, 1, 30.0),
            rec(JobState::Timeout, 1, 1, 100.0),
            rec(JobState::Completed, 0, 1, 999.0),
        ];
        let rows = weekly_elapsed(&records, 2);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].job_fail, Some(20.0));
        assert_eq!(rows[0].timeout, None);
        assert_eq!(rows[0].overall, Some(20.0));
        assert_eq!(rows[1].timeout, Some(100.0));
        assert_eq!(rows[1].overall, Some(100.0));
    }

    #[test]
    fn overall_mean_ignores_non_failures() {
        let records = vec![
            rec(JobState::Completed, 0, 1, 1000.0),
            rec(JobState::JobFail, 0, 1, 50.0),
            rec(JobState::NodeFail, 0, 1, 150.0),
        ];
        assert_eq!(overall_mean_elapsed(&records), Some(100.0));
        assert_eq!(overall_mean_elapsed(&[]), None);
    }

    #[test]
    fn node_bucket_shares_sum_to_one() {
        let records = vec![
            rec(JobState::JobFail, 0, 10, 5.0),
            rec(JobState::Timeout, 0, 10, 5.0),
            rec(JobState::NodeFail, 0, 8000, 5.0),
            rec(JobState::Timeout, 0, 8000, 5.0),
        ];
        let rows = by_node_count(&records);
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].failures, 2);
        assert!((rows[0].job_fail + rows[0].timeout + rows[0].node_fail - 1.0).abs() < 1e-12);
        let top = &rows[5];
        assert_eq!(top.failures, 2);
        assert_eq!(top.node_fail, 0.5);
        assert_eq!(top.timeout, 0.5);
        assert_eq!(top.label, "7750-9408");
    }

    #[test]
    fn elapsed_bucket_indexing() {
        let records = vec![
            rec(JobState::JobFail, 0, 1, 10.0),
            rec(JobState::JobFail, 0, 1, 100.0),
            rec(JobState::JobFail, 0, 1, 5000.0),
        ];
        let rows = by_elapsed(&records);
        assert_eq!(rows[0].failures, 1);
        assert_eq!(rows[3].failures, 1);
        assert_eq!(rows[5].failures, 1);
    }

    #[test]
    fn empty_buckets_are_zero_not_nan() {
        let rows = by_node_count(&[]);
        for r in rows {
            assert_eq!(r.failures, 0);
            assert_eq!(r.job_fail, 0.0);
        }
    }
}
