//! # ftc-slurm — job-failure substrate (paper §III)
//!
//! The paper's first contribution is a six-month analysis of Frontier's
//! SLURM logs: 181,933 jobs, 25.04 % failing, with Node Fail + Timeout —
//! the classes that kill a distributed cache — making up about half of
//! failures and dominating at high node counts. The raw logs are
//! proprietary, so this crate provides:
//!
//! * [`TraceGenerator`] — a synthetic `sacct` trace whose marginals are
//!   calibrated to the paper's published aggregates;
//! * [`analysis`] — the census/series/distribution pipeline producing
//!   Table I, Figure 1 and Figure 2;
//! * [`render`] — aligned-text rendition of each, with the paper's
//!   numbers alongside for comparison.

#![warn(missing_docs)]

pub mod analysis;
pub mod generator;
pub mod model;
pub mod render;

pub use analysis::{
    by_elapsed, by_node_count, census, overall_mean_elapsed, weekly_elapsed, BucketShares,
    FailureCensus, WeeklyElapsed,
};
pub use generator::{TraceConfig, TraceGenerator, ELAPSED_BUCKETS, NODE_BUCKETS};
pub use model::{JobRecord, JobState};
