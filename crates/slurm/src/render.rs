//! Text rendering of the analysis results, in the layout of the paper's
//! Table I and Figures 1–2, with the published values alongside for
//! comparison.

use crate::analysis::{BucketShares, FailureCensus, WeeklyElapsed};
use crate::model::JobState;
use std::fmt::Write as _;

/// Render Table I next to the paper's published numbers.
pub fn render_table1(c: &FailureCensus) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "TABLE I — job failures over six months (measured vs paper)"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>14} {:>14} {:>22}",
        "Type", "Count", "Failure ratio", "Overall ratio", "Paper (fail/overall)"
    );
    let total = c.total_jobs as f64;
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>14} {:>13.2}% {:>22}",
        "Total Jobs", c.total_jobs, "N/A", 100.0, "181,933 / 100%"
    );
    let _ = writeln!(
        s,
        "{:<16} {:>10} {:>13.2}% {:>13.2}% {:>22}",
        "Total Failures",
        c.total_failures,
        100.0,
        100.0 * c.total_failures as f64 / total,
        "100% / 25.04%"
    );
    let mut row = |label: &str, count: u64, paper: &str| {
        let _ = writeln!(
            s,
            "{:<16} {:>10} {:>13.2}% {:>13.2}% {:>22}",
            label,
            count,
            100.0 * count as f64 / c.total_failures as f64,
            100.0 * count as f64 / total,
            paper
        );
    };
    row("Node Fail", c.node_fail, "2.58% / 0.65%");
    row("Timeout", c.timeout, "44.92% / 11.25%");
    row("Job Fail", c.job_fail, "52.50% / 13.15%");
    s
}

/// Render the Fig. 1 weekly series as an aligned table.
pub fn render_fig1(rows: &[WeeklyElapsed], overall_mean: Option<f64>) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "FIG 1 — mean elapsed minutes of failed jobs per week (27 weeks)"
    );
    let _ = writeln!(
        s,
        "{:>4} {:>10} {:>10} {:>10} {:>10}",
        "week",
        JobState::JobFail.label(),
        JobState::Timeout.label(),
        JobState::NodeFail.label(),
        "OVERALL"
    );
    let fmt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:.1}"));
    for r in rows {
        let _ = writeln!(
            s,
            "{:>4} {:>10} {:>10} {:>10} {:>10}",
            r.week,
            fmt(r.job_fail),
            fmt(r.timeout),
            fmt(r.node_fail),
            fmt(r.overall)
        );
    }
    if let Some(m) = overall_mean {
        let _ = writeln!(
            s,
            "overall mean (red dashed line): {m:.1} min   [paper: ~75 min]"
        );
    }
    s
}

/// Render a Fig. 2 panel (either axis) as an aligned table.
pub fn render_fig2(rows: &[BucketShares], axis: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "FIG 2 — failure-type distribution by {axis}");
    let _ = writeln!(
        s,
        "{:>14} {:>9} {:>10} {:>10} {:>10} {:>10}",
        axis, "failures", "JOB_FAIL", "TIMEOUT", "NODE_FAIL", "NF+TO"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:>14} {:>9} {:>9.2}% {:>9.2}% {:>9.2}% {:>9.2}%",
            r.label,
            r.failures,
            100.0 * r.job_fail,
            100.0 * r.timeout,
            100.0 * r.node_fail,
            100.0 * (r.node_fail + r.timeout),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_all_rows() {
        let c = FailureCensus {
            total_jobs: 100,
            total_failures: 25,
            node_fail: 1,
            timeout: 11,
            job_fail: 13,
        };
        let out = render_table1(&c);
        assert!(out.contains("Total Jobs"));
        assert!(out.contains("Node Fail"));
        assert!(out.contains("25.00%"));
        assert!(out.contains("181,933"));
    }

    #[test]
    fn fig1_handles_missing_weeks() {
        let rows = vec![WeeklyElapsed {
            week: 0,
            job_fail: Some(10.0),
            timeout: None,
            node_fail: None,
            overall: Some(10.0),
        }];
        let out = render_fig1(&rows, Some(10.0));
        assert!(out.contains("10.0"));
        assert!(out.contains(" - "));
        assert!(out.contains("~75 min"));
    }

    #[test]
    fn fig2_renders_percentages() {
        let rows = vec![BucketShares {
            label: "1-15".into(),
            failures: 4,
            job_fail: 0.5,
            timeout: 0.25,
            node_fail: 0.25,
        }];
        let out = render_fig2(&rows, "node count");
        assert!(out.contains("50.00%"));
        assert!(out.contains("1-15"));
        assert!(out.contains("NF+TO"));
    }
}
