//! SLURM job-record model — the shape of `sacct` output the paper's
//! six-month Frontier analysis (§III) consumed.

use serde::{Deserialize, Serialize};

/// Terminal state of a job, per the paper's taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobState {
    /// Ran to completion.
    Completed,
    /// "Job Fail results from code errors, data issues, environment
    /// problems, or external system malfunctions."
    JobFail,
    /// "Node Fail occurs when a specific node stops functioning due to
    /// hardware issues, network problems, software bugs, or overload."
    NodeFail,
    /// "Timeout happens when a job does not complete within a set time
    /// limit" — treated as a node failure in the paper's context (network
    /// timeouts).
    Timeout,
    /// Cancelled by users/admins/maintenance — excluded from analysis.
    Cancelled,
}

impl JobState {
    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Completed => "COMPLETED",
            JobState::JobFail => "JOB_FAIL",
            JobState::NodeFail => "NODE_FAIL",
            JobState::Timeout => "TIMEOUT",
            JobState::Cancelled => "CANCELLED",
        }
    }

    /// True for the three failure states the analysis counts.
    pub fn is_failure(self) -> bool {
        matches!(
            self,
            JobState::JobFail | JobState::NodeFail | JobState::Timeout
        )
    }

    /// True for states the paper folds into "node failures" for the
    /// fault-tolerance argument (`Node Fail` + `Timeout`, §III).
    pub fn counts_as_node_failure(self) -> bool {
        matches!(self, JobState::NodeFail | JobState::Timeout)
    }
}

/// One job record, as the analysis consumes it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Sequential job id.
    pub id: u64,
    /// Week since production start (0..27 for the paper's window).
    pub week: u32,
    /// Allocated node count.
    pub node_count: u32,
    /// Elapsed minutes before the terminal state.
    pub elapsed_min: f64,
    /// Terminal state.
    pub state: JobState,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_classification() {
        assert_eq!(JobState::NodeFail.label(), "NODE_FAIL");
        assert!(JobState::JobFail.is_failure());
        assert!(JobState::Timeout.is_failure());
        assert!(JobState::NodeFail.is_failure());
        assert!(!JobState::Completed.is_failure());
        assert!(!JobState::Cancelled.is_failure());
        assert!(JobState::Timeout.counts_as_node_failure());
        assert!(JobState::NodeFail.counts_as_node_failure());
        assert!(!JobState::JobFail.counts_as_node_failure());
    }
}
