//! Synthetic Frontier job-trace generator.
//!
//! The real six-month `sacct` dump is proprietary; the paper publishes its
//! *aggregates* (Table I, Figures 1–2). This generator inverts them: it
//! samples job records whose marginal distributions match the published
//! numbers, so the analysis pipeline in [`crate::analysis`] can run end to
//! end and be validated against the paper:
//!
//! * 181,933 jobs over 27 weeks, 25.04 % failing;
//! * failures split Job Fail 52.50 % / Timeout 44.92 % / Node Fail 2.58 %;
//! * Node Fail share of failures grows with node count, reaching 46.04 %
//!   (78.60 % together with Timeout) in the 7,750–9,300-node bucket;
//! * failed jobs run ~75 minutes on average before dying, with weekly
//!   spikes to 2–3 hours for Node Fail / Timeout.

use crate::model::{JobRecord, JobState};
use ftc_hashring::hash::splitmix64;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Node-count bucket boundaries used for both generation and the Fig. 2(a)
/// analysis — roughly log-spaced, with the paper's headline 7,750–9,300+
/// range as the top bucket.
pub const NODE_BUCKETS: [(u32, u32); 6] = [
    (1, 15),
    (16, 77),
    (78, 387),
    (388, 1549),
    (1550, 7749),
    (7750, 9408),
];

/// Elapsed-time buckets (minutes) for the Fig. 2(b) analysis.
pub const ELAPSED_BUCKETS: [(u32, u32); 6] = [
    (0, 15),
    (16, 45),
    (46, 90),
    (91, 180),
    (181, 360),
    (361, 100_000),
];

/// Generator calibration. Defaults reproduce the paper's aggregates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Number of analyzable (non-cancelled) jobs.
    pub total_jobs: u64,
    /// Additional cancelled jobs (excluded by the analysis).
    pub cancelled_jobs: u64,
    /// Weeks in the window.
    pub weeks: u32,
    /// Overall failure probability among analyzable jobs.
    pub p_failure: f64,
    /// P(Node Fail | failure) per node bucket.
    pub p_nodefail_by_bucket: [f64; 6],
    /// P(Timeout | failure) per node bucket.
    pub p_timeout_by_bucket: [f64; 6],
    /// Mean elapsed minutes for Job Fail / Timeout / Node Fail failures.
    pub mean_elapsed_min: [f64; 3],
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            total_jobs: 181_933,
            cancelled_jobs: 14_000,
            weeks: 27,
            p_failure: 0.2504,
            // Tuned so the bucket-share-weighted averages land on the
            // global splits (2.58 % / 44.92 %) while the top bucket shows
            // the paper's 46.04 % / 78.60 %.
            p_nodefail_by_bucket: [0.003, 0.004, 0.006, 0.015, 0.06, 0.4604],
            p_timeout_by_bucket: [0.45, 0.45, 0.45, 0.45, 0.42, 0.3256],
            // Weighted by the 52.5/44.9/2.6 mix — and by the weekly
            // modulation, whose Node Fail / Timeout factors average ≈1.13
            // — these yield ≈75 min overall.
            mean_elapsed_min: [53.0, 69.0, 78.0],
            seed: 20240301,
        }
    }
}

/// Synthetic `sacct` trace generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    config: TraceConfig,
}

impl TraceGenerator {
    /// Generator with the given calibration.
    pub fn new(config: TraceConfig) -> Self {
        TraceGenerator { config }
    }

    /// Paper-calibrated generator.
    pub fn frontier() -> Self {
        Self::new(TraceConfig::default())
    }

    /// The calibration in force.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Which bucket a node count falls into.
    pub fn bucket_of(nodes: u32) -> usize {
        NODE_BUCKETS
            .iter()
            .position(|&(lo, hi)| nodes >= lo && nodes <= hi)
            .unwrap_or(NODE_BUCKETS.len() - 1)
    }

    /// Deterministic weekly modulation of elapsed time per state, giving
    /// Fig. 1 its week-to-week texture (Node Fail / Timeout spike harder).
    fn weekly_factor(&self, week: u32, state: JobState) -> f64 {
        let tag = match state {
            JobState::JobFail => 1u64,
            JobState::Timeout => 2,
            JobState::NodeFail => 3,
            _ => 4,
        };
        let u =
            splitmix64(self.config.seed ^ (u64::from(week) << 8) ^ tag) as f64 / u64::MAX as f64;
        match state {
            // Node failures / timeouts occasionally run 2-3 hours before
            // dying; job fails are steadier.
            JobState::NodeFail | JobState::Timeout => 0.5 + 1.9 * u * u,
            _ => 0.7 + 0.6 * u,
        }
    }

    /// Generate the full trace (analyzable + cancelled records, shuffled
    /// week-wise deterministic).
    pub fn generate(&self) -> Vec<JobRecord> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let c = &self.config;
        let mut out = Vec::with_capacity((c.total_jobs + c.cancelled_jobs) as usize);
        let max_log = (9408f64).log10();

        for id in 0..c.total_jobs {
            let week = rng.random_range(0..c.weeks);
            // Log-uniform node counts: most jobs are small, a thin tail
            // reaches nearly the full machine.
            let nodes = 10f64.powf(rng.random::<f64>() * max_log).round().max(1.0) as u32;
            let bucket = Self::bucket_of(nodes);

            let state = if rng.random::<f64>() < c.p_failure {
                let u: f64 = rng.random();
                if u < c.p_nodefail_by_bucket[bucket] {
                    JobState::NodeFail
                } else if u < c.p_nodefail_by_bucket[bucket] + c.p_timeout_by_bucket[bucket] {
                    JobState::Timeout
                } else {
                    JobState::JobFail
                }
            } else {
                JobState::Completed
            };

            let mean = match state {
                JobState::JobFail => c.mean_elapsed_min[0],
                JobState::Timeout => c.mean_elapsed_min[1],
                JobState::NodeFail => c.mean_elapsed_min[2],
                _ => 110.0,
            };
            // Exponential around the weekly-modulated mean: long right
            // tail like real job mixes, never negative.
            let lambda = mean * self.weekly_factor(week, state);
            let elapsed = -lambda * (1.0 - rng.random::<f64>()).ln();

            out.push(JobRecord {
                id,
                week,
                node_count: nodes,
                elapsed_min: elapsed.max(0.1),
                state,
            });
        }

        for i in 0..c.cancelled_jobs {
            let week = rng.random_range(0..c.weeks);
            out.push(JobRecord {
                id: c.total_jobs + i,
                week,
                node_count: rng.random_range(1..=512),
                elapsed_min: rng.random_range(0.1..300.0),
                state: JobState::Cancelled,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Vec<JobRecord> {
        TraceGenerator::frontier().generate()
    }

    #[test]
    fn counts_match_config() {
        let t = trace();
        let c = TraceConfig::default();
        assert_eq!(t.len() as u64, c.total_jobs + c.cancelled_jobs);
        let cancelled = t.iter().filter(|r| r.state == JobState::Cancelled).count() as u64;
        assert_eq!(cancelled, c.cancelled_jobs);
    }

    #[test]
    fn failure_rate_near_paper() {
        let t = trace();
        let analyzable: Vec<_> = t
            .iter()
            .filter(|r| r.state != JobState::Cancelled)
            .collect();
        let failures = analyzable.iter().filter(|r| r.state.is_failure()).count() as f64;
        let rate = failures / analyzable.len() as f64;
        assert!(
            (rate - 0.2504).abs() < 0.01,
            "failure rate {rate:.4} vs paper 0.2504"
        );
    }

    #[test]
    fn failure_mix_near_paper() {
        let t = trace();
        let failures: Vec<_> = t.iter().filter(|r| r.state.is_failure()).collect();
        let share = |s: JobState| {
            failures.iter().filter(|r| r.state == s).count() as f64 / failures.len() as f64
        };
        let jf = share(JobState::JobFail);
        let to = share(JobState::Timeout);
        let nf = share(JobState::NodeFail);
        assert!((jf - 0.5250).abs() < 0.03, "JobFail {jf:.4} vs 0.5250");
        assert!((to - 0.4492).abs() < 0.03, "Timeout {to:.4} vs 0.4492");
        assert!((nf - 0.0258).abs() < 0.015, "NodeFail {nf:.4} vs 0.0258");
    }

    #[test]
    fn top_bucket_mix_near_paper() {
        let t = trace();
        let top: Vec<_> = t
            .iter()
            .filter(|r| r.state.is_failure() && r.node_count >= 7750)
            .collect();
        assert!(
            top.len() > 100,
            "need a populated top bucket, got {}",
            top.len()
        );
        let nf =
            top.iter().filter(|r| r.state == JobState::NodeFail).count() as f64 / top.len() as f64;
        let nf_to = top
            .iter()
            .filter(|r| r.state.counts_as_node_failure())
            .count() as f64
            / top.len() as f64;
        assert!((nf - 0.4604).abs() < 0.06, "top NodeFail {nf:.4} vs 0.4604");
        assert!(
            (nf_to - 0.7860).abs() < 0.06,
            "top NF+TO {nf_to:.4} vs 0.7860"
        );
    }

    #[test]
    fn mean_failure_elapsed_near_75_minutes() {
        let t = trace();
        let failures: Vec<_> = t.iter().filter(|r| r.state.is_failure()).collect();
        let mean = failures.iter().map(|r| r.elapsed_min).sum::<f64>() / failures.len() as f64;
        assert!(
            (55.0..95.0).contains(&mean),
            "mean elapsed {mean:.1} min vs ~75"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = TraceGenerator::frontier().generate();
        let b = TraceGenerator::frontier().generate();
        assert_eq!(a.len(), b.len());
        assert_eq!(a[0], b[0]);
        assert_eq!(a[a.len() - 1], b[b.len() - 1]);
        let mut cfg = TraceConfig::default();
        cfg.seed ^= 1;
        let c = TraceGenerator::new(cfg).generate();
        assert_ne!(a[0], c[0]);
    }

    #[test]
    fn bucket_of_is_total() {
        assert_eq!(TraceGenerator::bucket_of(1), 0);
        assert_eq!(TraceGenerator::bucket_of(15), 0);
        assert_eq!(TraceGenerator::bucket_of(16), 1);
        assert_eq!(TraceGenerator::bucket_of(9000), 5);
        assert_eq!(
            TraceGenerator::bucket_of(99_999),
            5,
            "beyond max clamps to top"
        );
    }

    #[test]
    fn weeks_cover_window() {
        let t = trace();
        let weeks: std::collections::HashSet<u32> = t.iter().map(|r| r.week).collect();
        assert_eq!(weeks.len(), 27);
        assert!(weeks.iter().all(|&w| w < 27));
    }
}
