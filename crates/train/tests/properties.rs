//! Property tests for the training substrate: sharding exactness,
//! batch-plan coverage, and the elastic membership state machine.

use ftc_hashring::NodeId;
use ftc_train::{BatchPlan, ElasticState, ShuffleSampler};
use proptest::prelude::*;
use std::time::Duration;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Shards partition every epoch exactly, for any world size, and
    /// shard sizes differ by at most one.
    #[test]
    fn shards_partition_exactly(
        samples in 1u32..2000,
        world in 1u32..64,
        epoch in 0u32..20,
        seed in any::<u64>(),
    ) {
        let world = world.min(samples).max(1);
        let s = ShuffleSampler::new(samples, seed);
        let mut all = Vec::new();
        let mut sizes = Vec::new();
        for r in 0..world {
            let shard = s.shard(epoch, r, world);
            prop_assert_eq!(shard.len() as u32, s.shard_len(r, world));
            sizes.push(shard.len());
            all.extend(shard);
        }
        prop_assert_eq!(all.clone(), s.epoch_order(epoch));
        let mut sorted = all;
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..samples).collect::<Vec<_>>());
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1, "shard sizes must be balanced");
    }

    /// The shuffle is a permutation and differs between epochs (for
    /// non-trivial sizes).
    #[test]
    fn shuffle_is_permutation(samples in 2u32..1500, seed in any::<u64>()) {
        let s = ShuffleSampler::new(samples, seed);
        let e0 = s.epoch_order(0);
        let e1 = s.epoch_order(1);
        let mut sorted = e0.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..samples).collect::<Vec<_>>());
        if samples > 16 {
            prop_assert_ne!(e0, e1, "epochs must reshuffle");
        }
    }

    /// Batch plans tile any shard exactly: ranges are contiguous,
    /// disjoint, and cover 0..shard_len.
    #[test]
    fn batch_plan_tiles_shards(
        per_rank in 1u32..64,
        world in 1u32..64,
        shard_len in 0u32..5000,
    ) {
        let plan = BatchPlan::per_rank(per_rank, world);
        let steps = plan.steps_for(shard_len);
        let mut covered = 0usize;
        for step in 0..steps {
            let r = plan.step_range(shard_len, step);
            prop_assert_eq!(r.start, covered, "ranges must be contiguous");
            prop_assert!(r.end <= shard_len as usize);
            prop_assert!(!r.is_empty() || shard_len == 0);
            covered = r.end;
        }
        prop_assert_eq!(covered, shard_len as usize);
        prop_assert!(plan.step_range(shard_len, steps).is_empty());
    }

    /// Elastic membership: any fail/join sequence keeps the live list
    /// sorted and duplicate-free, and rollback count equals successful
    /// failures.
    #[test]
    fn elastic_membership_invariants(
        world in 1u32..16,
        ops in prop::collection::vec((any::<bool>(), 0u32..20), 0..40),
    ) {
        let mut e = ElasticState::new(world, Duration::ZERO);
        let mut expected_rollbacks = 0;
        for (is_fail, rank) in ops {
            let rank = NodeId(rank);
            if is_fail {
                if e.fail_rank(0, rank).is_some() {
                    expected_rollbacks += 1;
                }
            } else {
                e.join_rank(0, rank);
            }
            let live = e.live_ranks();
            let mut sorted = live.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(live.to_vec(), sorted, "live list sorted + unique");
            // Shard indices are a bijection onto 0..world.
            for (i, &r) in live.iter().enumerate() {
                prop_assert_eq!(e.shard_index(r), Some(i as u32));
            }
        }
        prop_assert_eq!(e.rollbacks(), expected_rollbacks);
    }
}
