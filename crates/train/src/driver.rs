//! The training-loop driver: batch-synchronous, data-parallel epochs over
//! any read backend, with Horovod-elastic rollback on injected failures.
//!
//! One thread per live rank reads its shuffled shard micro-batch by
//! micro-batch, synchronizing at a barrier after every step (the
//! allreduce). A fault plan names the victim rank and the step at which it
//! dies; when it triggers, the victim silences its node (via the injected
//! kill callback — `sacct update State=DRAIN` in the paper's runs) and the
//! epoch aborts at the next barrier, exactly as Horovod elastic notices a
//! lost rank at its next collective. The driver then rolls back to the
//! epoch start, pays the resume overhead, and re-runs with the survivors.

use crate::batch::BatchPlan;
use crate::dataset::Dataset;
use crate::elastic::ElasticState;
use crate::sampler::ShuffleSampler;
use bytes::Bytes;
use ftc_hashring::NodeId;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Errors a backend can surface to the training loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// Unrecoverable (NoFT node failure, no live nodes, …) — the job dies.
    Fatal(String),
    /// The file does not exist anywhere.
    Missing(String),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Fatal(s) => write!(f, "fatal backend error: {s}"),
            BackendError::Missing(p) => write!(f, "missing file: {p}"),
        }
    }
}

impl std::error::Error for BackendError {}

/// Anything the training loop can read samples through — an
/// [`ftc_core::HvacClient`] in the threaded cluster, or a plain PFS/test
/// double.
pub trait ReadBackend: Send + Sync {
    /// Read one sample file.
    fn read(&self, path: &str) -> Result<Bytes, BackendError>;
}

impl ReadBackend for ftc_core::HvacClient {
    fn read(&self, path: &str) -> Result<Bytes, BackendError> {
        use ftc_core::ReadError;
        ftc_core::HvacClient::read(self, path).map_err(|e| match e {
            ReadError::NotFound(p) => BackendError::Missing(p),
            other => BackendError::Fatal(other.to_string()),
        })
    }
}

/// One planned failure: `node` dies when it reaches `step` of `epoch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Epoch in which the failure occurs (0-based).
    pub epoch: u32,
    /// Step within the epoch at which the victim dies.
    pub step: u32,
    /// The victim rank/node.
    pub node: NodeId,
}

/// Training-run parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of epochs (the paper runs 5).
    pub epochs: u32,
    /// Micro-batch size per rank.
    pub per_rank_batch: u32,
    /// Elastic resume overhead paid per rollback (really slept, so wall
    /// times in reports reflect it).
    pub resume_overhead: Duration,
    /// Verify every sample against its synthetic reference content.
    pub verify_content: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            per_rank_batch: 4,
            resume_overhead: Duration::from_millis(20),
            verify_content: true,
        }
    }
}

/// Per-epoch outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: u32,
    /// Attempts (1 + rollbacks within this epoch).
    pub attempts: u32,
    /// Wall time including failed attempts and resume overheads.
    pub wall: Duration,
    /// Samples successfully read (completed attempt only).
    pub samples_read: u64,
    /// World size when the epoch finally completed.
    pub world_at_completion: u32,
}

/// How the run ended.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrainOutcome {
    /// All epochs completed.
    Completed,
    /// A fatal backend error aborted the job (the NoFT baseline's fate).
    Aborted {
        /// The error text.
        error: String,
        /// Epoch during which the job died.
        epoch: u32,
    },
}

/// Full run report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Per-epoch breakdown (epochs reached).
    pub epochs: Vec<EpochReport>,
    /// Terminal outcome.
    pub outcome: TrainOutcome,
    /// End-to-end wall time.
    pub total_wall: Duration,
    /// Total rollbacks across the run.
    pub rollbacks: u32,
}

impl TrainReport {
    /// True when training finished all epochs.
    pub fn completed(&self) -> bool {
        self.outcome == TrainOutcome::Completed
    }
}

enum EpochResult {
    Completed { samples: u64 },
    RolledBack { rank: NodeId },
    Fatal { error: String },
}

/// The batch-synchronous training driver.
pub struct TrainDriver {
    dataset: Dataset,
    sampler: ShuffleSampler,
    config: TrainConfig,
    backends: Vec<Arc<dyn ReadBackend>>,
    elastic: ElasticState,
    kill_fn: Arc<dyn Fn(NodeId) + Send + Sync>,
}

impl TrainDriver {
    /// Driver over `backends` (index = rank id). `kill_fn` is invoked when
    /// a fault triggers, and must make the node unresponsive (e.g.
    /// `Cluster::kill`).
    pub fn new(
        dataset: Dataset,
        seed: u64,
        config: TrainConfig,
        backends: Vec<Arc<dyn ReadBackend>>,
        kill_fn: Arc<dyn Fn(NodeId) + Send + Sync>,
    ) -> Self {
        let world = backends.len() as u32;
        let sampler = ShuffleSampler::new(dataset.train_samples, seed);
        let elastic = ElasticState::new(world, config.resume_overhead);
        TrainDriver {
            dataset,
            sampler,
            config,
            backends,
            elastic,
            kill_fn,
        }
    }

    /// Elastic membership view (world size, rollbacks, events).
    pub fn elastic(&self) -> &ElasticState {
        &self.elastic
    }

    /// Run the configured epochs with the given fault plan.
    pub fn run(&mut self, faults: &[FaultSpec]) -> TrainReport {
        let t_run = Instant::now();
        let mut pending: Vec<FaultSpec> = faults.to_vec();
        let mut epochs = Vec::new();
        let mut total_rollbacks = 0;

        for epoch in 0..self.config.epochs {
            let t_epoch = Instant::now();
            let mut attempts = 0;
            loop {
                attempts += 1;
                if self.elastic.world() == 0 {
                    return TrainReport {
                        epochs,
                        outcome: TrainOutcome::Aborted {
                            error: "no ranks remain".into(),
                            epoch,
                        },
                        total_wall: t_run.elapsed(),
                        rollbacks: total_rollbacks,
                    };
                }
                // The first still-pending fault for this epoch (one victim
                // per attempt, like the paper's single-node failures).
                let fault = pending
                    .iter()
                    .copied()
                    .find(|f| f.epoch == epoch && self.elastic.is_live(f.node));
                match self.run_epoch_attempt(epoch, fault) {
                    EpochResult::Completed { samples } => {
                        epochs.push(EpochReport {
                            epoch,
                            attempts,
                            wall: t_epoch.elapsed(),
                            samples_read: samples,
                            world_at_completion: self.elastic.world(),
                        });
                        break;
                    }
                    EpochResult::RolledBack { rank } => {
                        total_rollbacks += 1;
                        pending.retain(|f| !(f.epoch == epoch && f.node == rank));
                        self.elastic.fail_rank(epoch, rank);
                        std::thread::sleep(self.config.resume_overhead);
                        // loop: re-run the epoch with the survivors
                    }
                    EpochResult::Fatal { error } => {
                        return TrainReport {
                            epochs,
                            outcome: TrainOutcome::Aborted { error, epoch },
                            total_wall: t_run.elapsed(),
                            rollbacks: total_rollbacks,
                        };
                    }
                }
            }
        }

        TrainReport {
            epochs,
            outcome: TrainOutcome::Completed,
            total_wall: t_run.elapsed(),
            rollbacks: total_rollbacks,
        }
    }

    fn run_epoch_attempt(&self, epoch: u32, fault: Option<FaultSpec>) -> EpochResult {
        let live: Vec<NodeId> = self.elastic.live_ranks().to_vec();
        let world = live.len() as u32;
        let plan = BatchPlan::per_rank(self.config.per_rank_batch, world);

        // Everybody must hit the barrier the same number of times.
        let max_shard = (0..world)
            .map(|r| self.sampler.shard_len(r, world))
            .max()
            .unwrap_or(0);
        let steps = plan.steps_for(max_shard).max(1);

        let barrier = Arc::new(Barrier::new(live.len()));
        let abort = Arc::new(AtomicBool::new(false));
        let rolled_back: Arc<Mutex<Option<NodeId>>> = Arc::new(Mutex::new(None));
        let fatal: Arc<Mutex<Option<String>>> = Arc::new(Mutex::new(None));
        let samples = Arc::new(AtomicU64::new(0));

        let mut joins = Vec::with_capacity(live.len());
        for (shard_idx, &rank) in live.iter().enumerate() {
            let backend = Arc::clone(&self.backends[rank.index()]);
            let shard: Vec<String> = self
                .sampler
                .shard(epoch, shard_idx as u32, world)
                .into_iter()
                .map(|i| self.dataset.train_path(i))
                .collect();
            let barrier = Arc::clone(&barrier);
            let abort = Arc::clone(&abort);
            let rolled_back = Arc::clone(&rolled_back);
            let fatal = Arc::clone(&fatal);
            let samples = Arc::clone(&samples);
            let kill_fn = Arc::clone(&self.kill_fn);
            let verify = self.config.verify_content;
            let my_fault = fault.filter(|f| f.node == rank);

            joins.push(std::thread::spawn(move || {
                let shard_len = shard.len() as u32;
                // ordering: SeqCst on every `abort` access — the flag is a
                // cross-rank consensus bit read/written around barriers and
                // paired with mutex-guarded verdicts (`fatal`,
                // `rolled_back`); SeqCst keeps one total order so no rank
                // can observe the verdict without the flag.
                for step in 0..steps {
                    if let Some(f) = my_fault {
                        if step == f.step.min(steps - 1) && !abort.load(Ordering::SeqCst) {
                            // This rank's node dies now: silence it and let
                            // the collective discover the loss.
                            kill_fn(f.node);
                            *rolled_back.lock() = Some(f.node);
                            // ordering: SeqCst — abort consensus, see above.
                            abort.store(true, Ordering::SeqCst);
                        }
                    }
                    // ordering: SeqCst — abort consensus, see above.
                    if !abort.load(Ordering::SeqCst) {
                        for path in &shard[plan.step_range(shard_len, step)] {
                            match backend.read(path) {
                                Ok(bytes) => {
                                    if verify && !ftc_storage::verify_synth(path, &bytes) {
                                        *fatal.lock() = Some(format!("corrupt content for {path}"));
                                        // ordering: SeqCst — abort consensus.
                                        abort.store(true, Ordering::SeqCst);
                                        break;
                                    }
                                    // ordering: Relaxed — pure tally, read
                                    // only after the worker threads join.
                                    samples.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(BackendError::Missing(p)) => {
                                    *fatal.lock() = Some(format!("missing file: {p}"));
                                    // ordering: SeqCst — abort consensus,
                                    // see the note at the top of the loop.
                                    abort.store(true, Ordering::SeqCst);
                                    break;
                                }
                                Err(BackendError::Fatal(e)) => {
                                    *fatal.lock() = Some(e);
                                    // ordering: SeqCst — abort consensus.
                                    abort.store(true, Ordering::SeqCst);
                                    break;
                                }
                            }
                        }
                    }
                    // The allreduce: everyone has finished the step.
                    barrier.wait();
                    // Abort consensus. The flag must be sampled between two
                    // barriers: a fast victim can set `abort` for step s+1
                    // while a slow rank has not yet checked step s's flag —
                    // without the second barrier the ranks would disagree on
                    // which step to break at and deadlock the next barrier.
                    // ordering: SeqCst — see the note at the top of the loop.
                    let stop = abort.load(Ordering::SeqCst);
                    barrier.wait();
                    if stop {
                        break;
                    }
                }
            }));
        }
        for j in joins {
            let _ = j.join();
        }

        if let Some(err) = fatal.lock().take() {
            return EpochResult::Fatal { error: err };
        }
        if let Some(rank) = rolled_back.lock().take() {
            return EpochResult::RolledBack { rank };
        }
        EpochResult::Completed {
            // ordering: Relaxed — workers joined above; the count is final.
            samples: samples.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftc_storage::synth_bytes;
    use std::collections::HashSet;

    /// Backend that reads straight from a shared map (no cluster): isolates
    /// driver logic from cache logic.
    struct MapBackend {
        files: Arc<parking_lot::RwLock<std::collections::HashMap<String, Bytes>>>,
        log: Arc<Mutex<Vec<String>>>,
    }

    impl ReadBackend for MapBackend {
        fn read(&self, path: &str) -> Result<Bytes, BackendError> {
            self.log.lock().push(path.to_owned());
            self.files
                .read()
                .get(path)
                .cloned()
                .ok_or_else(|| BackendError::Missing(path.to_owned()))
        }
    }

    type ReadLog = Arc<Mutex<Vec<String>>>;

    fn map_rig(dataset: &Dataset, ranks: u32) -> (Vec<Arc<dyn ReadBackend>>, ReadLog) {
        let mut files = std::collections::HashMap::new();
        for i in 0..dataset.train_samples {
            let p = dataset.train_path(i);
            files.insert(p.clone(), synth_bytes(&p, dataset.sample_bytes as usize));
        }
        let files = Arc::new(parking_lot::RwLock::new(files));
        let log = Arc::new(Mutex::new(Vec::new()));
        let backends: Vec<Arc<dyn ReadBackend>> = (0..ranks)
            .map(|_| {
                Arc::new(MapBackend {
                    files: Arc::clone(&files),
                    log: Arc::clone(&log),
                }) as Arc<dyn ReadBackend>
            })
            .collect();
        (backends, log)
    }

    fn noop_kill() -> Arc<dyn Fn(NodeId) + Send + Sync> {
        Arc::new(|_| {})
    }

    #[test]
    fn healthy_run_reads_every_sample_every_epoch() {
        let ds = Dataset::tiny(24, 16);
        let (backends, log) = map_rig(&ds, 4);
        let cfg = TrainConfig {
            epochs: 3,
            per_rank_batch: 2,
            resume_overhead: Duration::ZERO,
            verify_content: true,
        };
        let mut d = TrainDriver::new(ds.clone(), 7, cfg, backends, noop_kill());
        let report = d.run(&[]);
        assert!(report.completed());
        assert_eq!(report.epochs.len(), 3);
        assert_eq!(report.rollbacks, 0);
        for e in &report.epochs {
            assert_eq!(e.samples_read, 24);
            assert_eq!(e.attempts, 1);
            assert_eq!(e.world_at_completion, 4);
        }
        // Every epoch covered the full dataset.
        let reads = log.lock();
        assert_eq!(reads.len(), 72);
        let uniq: HashSet<&String> = reads.iter().collect();
        assert_eq!(uniq.len(), 24);
    }

    #[test]
    fn fault_rolls_back_and_completes_with_survivors() {
        let ds = Dataset::tiny(24, 16);
        let (backends, _log) = map_rig(&ds, 4);
        let cfg = TrainConfig {
            epochs: 3,
            per_rank_batch: 2,
            resume_overhead: Duration::from_millis(5),
            verify_content: true,
        };
        let killed: Arc<Mutex<Vec<NodeId>>> = Arc::new(Mutex::new(Vec::new()));
        let k2 = Arc::clone(&killed);
        let kill: Arc<dyn Fn(NodeId) + Send + Sync> = Arc::new(move |n| k2.lock().push(n));
        let mut d = TrainDriver::new(ds, 7, cfg, backends, kill);
        let report = d.run(&[FaultSpec {
            epoch: 1,
            step: 1,
            node: NodeId(2),
        }]);
        assert!(report.completed());
        assert_eq!(report.rollbacks, 1);
        assert_eq!(killed.lock().as_slice(), &[NodeId(2)]);
        assert_eq!(report.epochs[0].world_at_completion, 4);
        assert_eq!(report.epochs[1].attempts, 2, "epoch 1 rolled back once");
        assert_eq!(report.epochs[1].world_at_completion, 3);
        assert_eq!(report.epochs[2].world_at_completion, 3);
        // Every completed epoch still reads the whole dataset.
        for e in &report.epochs {
            assert_eq!(e.samples_read, 24);
        }
        assert_eq!(d.elastic().rollbacks(), 1);
    }

    #[test]
    fn missing_file_aborts() {
        let ds = Dataset::tiny(8, 16);
        let (_backends, _log) = map_rig(&ds, 2);
        // Sabotage: remove one file from the shared map via a fresh rig.
        let cfg = TrainConfig {
            epochs: 1,
            per_rank_batch: 2,
            resume_overhead: Duration::ZERO,
            verify_content: false,
        };
        // Build backends over a map missing one file.
        let mut files = std::collections::HashMap::new();
        for i in 1..ds.train_samples {
            let p = ds.train_path(i);
            files.insert(p.clone(), synth_bytes(&p, 16));
        }
        let files = Arc::new(parking_lot::RwLock::new(files));
        let log = Arc::new(Mutex::new(Vec::new()));
        let backends: Vec<Arc<dyn ReadBackend>> = (0..2)
            .map(|_| {
                Arc::new(MapBackend {
                    files: Arc::clone(&files),
                    log: Arc::clone(&log),
                }) as Arc<dyn ReadBackend>
            })
            .collect();
        let _ = backends;
        let mut d = TrainDriver::new(ds, 7, cfg, backends, noop_kill());
        let report = d.run(&[]);
        match report.outcome {
            TrainOutcome::Aborted { error, .. } => assert!(error.contains("missing")),
            TrainOutcome::Completed => panic!("must abort on missing file"),
        }
    }

    #[test]
    fn corruption_is_detected() {
        let ds = Dataset::tiny(4, 16);
        let p0 = ds.train_path(0);
        let mut files = std::collections::HashMap::new();
        for i in 0..ds.train_samples {
            let p = ds.train_path(i);
            files.insert(p.clone(), synth_bytes(&p, 16));
        }
        files.insert(p0, Bytes::from_static(b"corrupted-not-synth!")); // wrong bytes
        let files = Arc::new(parking_lot::RwLock::new(files));
        let log = Arc::new(Mutex::new(Vec::new()));
        let backends: Vec<Arc<dyn ReadBackend>> = (0..2)
            .map(|_| {
                Arc::new(MapBackend {
                    files: Arc::clone(&files),
                    log: Arc::clone(&log),
                }) as Arc<dyn ReadBackend>
            })
            .collect();
        let cfg = TrainConfig {
            epochs: 1,
            per_rank_batch: 1,
            resume_overhead: Duration::ZERO,
            verify_content: true,
        };
        let mut d = TrainDriver::new(ds, 7, cfg, backends, noop_kill());
        let report = d.run(&[]);
        match report.outcome {
            TrainOutcome::Aborted { error, .. } => assert!(error.contains("corrupt")),
            TrainOutcome::Completed => panic!("must detect corruption"),
        }
    }

    #[test]
    fn repeated_faults_shrink_world_repeatedly() {
        let ds = Dataset::tiny(16, 8);
        let (backends, _log) = map_rig(&ds, 4);
        let cfg = TrainConfig {
            epochs: 2,
            per_rank_batch: 1,
            resume_overhead: Duration::ZERO,
            verify_content: true,
        };
        let mut d = TrainDriver::new(ds, 3, cfg, backends, noop_kill());
        let report = d.run(&[
            FaultSpec {
                epoch: 0,
                step: 0,
                node: NodeId(1),
            },
            FaultSpec {
                epoch: 0,
                step: 0,
                node: NodeId(3),
            },
        ]);
        assert!(report.completed());
        assert_eq!(report.rollbacks, 2);
        assert_eq!(report.epochs[0].attempts, 3);
        assert_eq!(report.epochs[0].world_at_completion, 2);
    }

    #[test]
    fn fault_for_dead_rank_is_ignored() {
        let ds = Dataset::tiny(8, 8);
        let (backends, _log) = map_rig(&ds, 2);
        let cfg = TrainConfig {
            epochs: 2,
            per_rank_batch: 1,
            resume_overhead: Duration::ZERO,
            verify_content: true,
        };
        let mut d = TrainDriver::new(ds, 3, cfg, backends, noop_kill());
        // Same node named twice across epochs: second spec can't fire.
        let report = d.run(&[
            FaultSpec {
                epoch: 0,
                step: 0,
                node: NodeId(0),
            },
            FaultSpec {
                epoch: 1,
                step: 0,
                node: NodeId(0),
            },
        ]);
        assert!(report.completed());
        assert_eq!(report.rollbacks, 1);
    }
}
