//! Dataset descriptors.
//!
//! The evaluation trains CosmoFlow on the cosmoUniverse dataset: "1.3TB
//! TFRecord files … 524,288 samples for training and 65,536 samples for
//! validation" (§V-A2), all staged on the PFS before any run. The cache
//! only ever sees the dataset as a set of named, fixed-size files.

use serde::{Deserialize, Serialize};

/// A training dataset as the cache sees it: named files of a given size.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable name.
    pub name: String,
    /// Number of training samples (one file each).
    pub train_samples: u32,
    /// Number of validation samples (one file each).
    pub val_samples: u32,
    /// Bytes per sample file.
    pub sample_bytes: u64,
}

impl Dataset {
    /// The cosmoUniverse TFRecord dataset from the paper: 524,288 train +
    /// 65,536 validation samples, ~1.3 TB total → ≈2.2 MB per sample.
    pub fn cosmoflow() -> Self {
        Dataset {
            name: "cosmoUniverse".into(),
            train_samples: 524_288,
            val_samples: 65_536,
            // 1.3 TB / (524288 + 65536) samples ≈ 2.2 MB
            sample_bytes: 2_204_000,
        }
    }

    /// A linearly scaled-down replica (same shape, 1/`factor` the samples)
    /// for laptop-scale runs; sample size is preserved so per-file costs
    /// stay representative.
    pub fn scaled_down(&self, factor: u32) -> Self {
        assert!(factor >= 1);
        Dataset {
            name: format!("{}/÷{}", self.name, factor),
            train_samples: (self.train_samples / factor).max(1),
            val_samples: (self.val_samples / factor).max(1),
            sample_bytes: self.sample_bytes,
        }
    }

    /// A tiny synthetic dataset for tests.
    pub fn tiny(train: u32, bytes: u64) -> Self {
        Dataset {
            name: "tiny".into(),
            train_samples: train,
            val_samples: 0,
            sample_bytes: bytes,
        }
    }

    /// Path of training sample `i` (also its placement key).
    pub fn train_path(&self, i: u32) -> String {
        format!("train/sample_{i:07}.tfrecord")
    }

    /// Path of validation sample `i`.
    pub fn val_path(&self, i: u32) -> String {
        format!("val/sample_{i:07}.tfrecord")
    }

    /// All training paths.
    pub fn train_paths(&self) -> Vec<String> {
        (0..self.train_samples)
            .map(|i| self.train_path(i))
            .collect()
    }

    /// Total dataset footprint in bytes (train + val).
    pub fn total_bytes(&self) -> u64 {
        u64::from(self.train_samples + self.val_samples) * self.sample_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosmoflow_matches_paper() {
        let d = Dataset::cosmoflow();
        assert_eq!(d.train_samples, 524_288);
        assert_eq!(d.val_samples, 65_536);
        // ~1.3 TB total.
        let tb = d.total_bytes() as f64 / 1e12;
        assert!((1.25..1.35).contains(&tb), "total = {tb} TB");
    }

    #[test]
    fn paths_are_stable_and_distinct() {
        let d = Dataset::tiny(3, 10);
        assert_eq!(d.train_path(0), "train/sample_0000000.tfrecord");
        assert_ne!(d.train_path(1), d.train_path(2));
        assert_ne!(d.val_path(1), d.train_path(1));
        assert_eq!(d.train_paths().len(), 3);
    }

    #[test]
    fn scaling() {
        let d = Dataset::cosmoflow().scaled_down(512);
        assert_eq!(d.train_samples, 1024);
        assert_eq!(d.sample_bytes, Dataset::cosmoflow().sample_bytes);
        let t = Dataset::tiny(1, 1).scaled_down(1000);
        assert_eq!(t.train_samples, 1, "never scales to zero");
    }
}
