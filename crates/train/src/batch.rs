//! Batch-synchronous step structure.
//!
//! Data-parallel DL advances in global batches: each rank reads and
//! processes its micro-batch, then all ranks synchronize (the allreduce).
//! "When a small number of nodes experience delays … the majority of
//! nodes must wait for these slower nodes. This batch synchronization
//! causes the straggler problem to occur with each batch" (§IV-A1) — the
//! barrier in this module is where that waiting happens.

use serde::{Deserialize, Serialize};

/// Shape of one epoch's step loop for a given world size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPlan {
    /// Samples per rank per step (micro-batch).
    pub per_rank: u32,
    /// Live ranks.
    pub world: u32,
}

impl BatchPlan {
    /// Plan with a fixed micro-batch per rank (weak scaling — the MLPerf
    /// HPC configuration CosmoFlow uses).
    pub fn per_rank(per_rank: u32, world: u32) -> Self {
        assert!(per_rank > 0 && world > 0);
        BatchPlan { per_rank, world }
    }

    /// Plan derived from a global batch size (strong scaling): micro-batch
    /// = ceil(global / world).
    pub fn from_global(global: u32, world: u32) -> Self {
        assert!(global > 0 && world > 0);
        BatchPlan {
            per_rank: global.div_ceil(world),
            world,
        }
    }

    /// Global samples consumed per step.
    pub fn global_batch(&self) -> u32 {
        self.per_rank * self.world
    }

    /// Steps needed for a rank-shard of `shard_len` samples (last step may
    /// be short).
    pub fn steps_for(&self, shard_len: u32) -> u32 {
        shard_len.div_ceil(self.per_rank)
    }

    /// The sample-index range (within the shard) for `step`.
    pub fn step_range(&self, shard_len: u32, step: u32) -> std::ops::Range<usize> {
        let start = (step * self.per_rank).min(shard_len) as usize;
        let end = ((step + 1) * self.per_rank).min(shard_len) as usize;
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_and_per_rank() {
        let p = BatchPlan::per_rank(4, 8);
        assert_eq!(p.global_batch(), 32);
        let q = BatchPlan::from_global(30, 8);
        assert_eq!(q.per_rank, 4, "ceil(30/8)");
    }

    #[test]
    fn steps_cover_shard_exactly() {
        let p = BatchPlan::per_rank(4, 1);
        assert_eq!(p.steps_for(10), 3);
        assert_eq!(p.step_range(10, 0), 0..4);
        assert_eq!(p.step_range(10, 1), 4..8);
        assert_eq!(p.step_range(10, 2), 8..10, "short last step");
        assert_eq!(p.step_range(10, 3), 10..10, "past-the-end is empty");
    }

    #[test]
    fn zero_shard_means_zero_steps() {
        let p = BatchPlan::per_rank(4, 2);
        assert_eq!(p.steps_for(0), 0);
    }

    #[test]
    #[should_panic]
    fn zero_world_rejected() {
        BatchPlan::per_rank(1, 0);
    }
}
