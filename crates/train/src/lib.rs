//! # ftc-train — the deep-learning workload substrate
//!
//! The cache under test serves a very particular I/O pattern: CosmoFlow
//! (MLPerf HPC) reading the 1.3 TB cosmoUniverse dataset for 5 epochs —
//! every epoch a fresh global shuffle, sharded across data-parallel ranks,
//! advancing in batch-synchronous steps, under Horovod elastic so a node
//! failure rolls the epoch back and resumes with the survivors (§V-A2).
//!
//! This crate reproduces that pattern without the 3D CNN:
//!
//! * [`Dataset`] — file-set descriptors ([`Dataset::cosmoflow`] matches
//!   the paper's sample counts and footprint);
//! * [`ShuffleSampler`] — deterministic per-epoch shuffling + sharding;
//! * [`BatchPlan`] — micro-batch/step structure (the straggler mechanism);
//! * [`ElasticState`] — membership, rollbacks, rejoins;
//! * [`TrainDriver`] — one thread per rank, a barrier per step, fault
//!   injection at a named (epoch, step, node).
//!
//! The driver is backend-generic ([`ReadBackend`]); plugging in an
//! [`ftc_core::HvacClient`] yields the full paper system end to end.

#![warn(missing_docs)]

pub mod batch;
pub mod dataset;
pub mod driver;
pub mod elastic;
pub mod sampler;

pub use batch::BatchPlan;
pub use dataset::Dataset;
pub use driver::{
    BackendError, EpochReport, FaultSpec, ReadBackend, TrainConfig, TrainDriver, TrainOutcome,
    TrainReport,
};
pub use elastic::{ElasticEvent, ElasticState};
pub use sampler::ShuffleSampler;
