//! Epoch shuffling and data-parallel sharding.
//!
//! "Data shuffling is crucial for improving model generalization …
//! subsequent epochs involve shuffling, requiring random access to
//! different data segments" (§II-A). The sampler produces a deterministic
//! per-epoch permutation (seeded Fisher–Yates), partitioned contiguously
//! across the live ranks — so every rank touches a different ~1/N of the
//! dataset each epoch, and the *union* covers everything.

use ftc_hashring::hash::splitmix64;

/// Deterministic per-epoch shuffler/sharder.
#[derive(Debug, Clone)]
pub struct ShuffleSampler {
    samples: u32,
    seed: u64,
}

impl ShuffleSampler {
    /// Sampler over `samples` items with a job-level seed.
    pub fn new(samples: u32, seed: u64) -> Self {
        ShuffleSampler { samples, seed }
    }

    /// Number of samples per epoch.
    pub fn samples(&self) -> u32 {
        self.samples
    }

    /// The full shuffled order for `epoch` (a permutation of
    /// `0..samples`). Fisher–Yates driven by a splitmix64 stream, so it is
    /// identical on every rank without communication — the property that
    /// lets data-parallel workers agree on shards.
    pub fn epoch_order(&self, epoch: u32) -> Vec<u32> {
        let mut order: Vec<u32> = (0..self.samples).collect();
        let mut state = splitmix64(self.seed ^ (u64::from(epoch) << 32 | 0x5eed));
        // Fisher–Yates: for i from n-1 down to 1, swap(i, uniform(0..=i)).
        for i in (1..order.len()).rev() {
            state = splitmix64(state);
            let j = (state % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        order
    }

    /// The contiguous shard of `epoch`'s order belonging to `rank` among
    /// `world` ranks. Shards differ in size by at most one sample and
    /// partition the epoch exactly.
    pub fn shard(&self, epoch: u32, rank: u32, world: u32) -> Vec<u32> {
        assert!(world > 0, "world must be non-empty");
        assert!(rank < world, "rank {rank} out of world {world}");
        let order = self.epoch_order(epoch);
        let n = order.len();
        let w = world as usize;
        let r = rank as usize;
        let base = n / w;
        let extra = n % w;
        // First `extra` ranks get one additional sample.
        let start = r * base + r.min(extra);
        let len = base + usize::from(r < extra);
        order[start..start + len].to_vec()
    }

    /// Size of `rank`'s shard without materializing the order.
    pub fn shard_len(&self, rank: u32, world: u32) -> u32 {
        let base = self.samples / world;
        let extra = self.samples % world;
        base + u32::from(rank < extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn order_is_permutation() {
        let s = ShuffleSampler::new(100, 7);
        let order = s.epoch_order(3);
        assert_eq!(order.len(), 100);
        let set: HashSet<u32> = order.iter().copied().collect();
        assert_eq!(set.len(), 100);
    }

    #[test]
    fn epochs_differ_and_repeat_deterministically() {
        let s = ShuffleSampler::new(64, 1);
        assert_eq!(s.epoch_order(0), s.epoch_order(0));
        assert_ne!(s.epoch_order(0), s.epoch_order(1));
        let other = ShuffleSampler::new(64, 2);
        assert_ne!(s.epoch_order(0), other.epoch_order(0), "seed matters");
    }

    #[test]
    fn shards_partition_the_epoch() {
        let s = ShuffleSampler::new(103, 9);
        for world in [1u32, 2, 3, 7] {
            let mut all = Vec::new();
            for rank in 0..world {
                all.extend(s.shard(5, rank, world));
            }
            assert_eq!(all, s.epoch_order(5), "world={world}");
        }
    }

    #[test]
    fn shard_sizes_balanced() {
        let s = ShuffleSampler::new(10, 0);
        let sizes: Vec<usize> = (0..4).map(|r| s.shard(0, r, 4).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        for r in 0..4u32 {
            assert_eq!(s.shard_len(r, 4) as usize, s.shard(0, r, 4).len());
        }
    }

    #[test]
    fn world_shrink_still_covers_everything() {
        // After a failure, the survivors re-shard: coverage must remain
        // exact with the smaller world.
        let s = ShuffleSampler::new(50, 3);
        let mut all = Vec::new();
        for rank in 0..3 {
            all.extend(s.shard(2, rank, 3));
        }
        let mut sorted = all.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "rank 3 out of world 3")]
    fn rank_bounds_checked() {
        ShuffleSampler::new(10, 0).shard(0, 3, 3);
    }

    #[test]
    fn first_epoch_is_shuffled_too() {
        // Guard against an identity epoch 0 (would skew warm-up locality).
        let s = ShuffleSampler::new(1000, 11);
        let identity: Vec<u32> = (0..1000).collect();
        assert_ne!(s.epoch_order(0), identity);
    }
}
