//! Horovod-elastic-style membership and rollback tracking.
//!
//! "We run the application with Horovod elastic run … CosmoFlow can
//! continue training even in the event of node failure by reverting to
//! the start of the failed epoch" (§V-A2). This module is that state
//! machine: a world of ranks, failure events that shrink it, rejoin
//! events that grow it, and the rule that a failure mid-epoch rolls the
//! epoch back and resumes with the survivors — paying a fixed resume
//! overhead that the paper identifies as the dominant fixed cost at high
//! node counts.

use ftc_hashring::NodeId;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// What happened to the membership, in order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ElasticEvent {
    /// A rank failed during `epoch`; the epoch restarts without it.
    FailureRollback {
        /// Epoch that was rolled back.
        epoch: u32,
        /// The failed rank.
        rank: NodeId,
        /// Survivor count after removal.
        world_after: u32,
    },
    /// A rank (re)joined before `epoch` began.
    Join {
        /// First epoch the rank participates in.
        epoch: u32,
        /// The joining rank.
        rank: NodeId,
        /// World size after the join.
        world_after: u32,
    },
}

/// Elastic membership tracker for one training job.
#[derive(Debug, Clone)]
pub struct ElasticState {
    live: Vec<NodeId>,
    resume_overhead: Duration,
    events: Vec<ElasticEvent>,
    rollbacks: u32,
}

impl ElasticState {
    /// Fresh state over ranks `0..world`.
    pub fn new(world: u32, resume_overhead: Duration) -> Self {
        ElasticState {
            live: (0..world).map(NodeId).collect(),
            resume_overhead,
            events: Vec::new(),
            rollbacks: 0,
        }
    }

    /// Live ranks, ascending.
    pub fn live_ranks(&self) -> &[NodeId] {
        &self.live
    }

    /// Live world size.
    pub fn world(&self) -> u32 {
        self.live.len() as u32
    }

    /// Whether a rank is currently live.
    pub fn is_live(&self, rank: NodeId) -> bool {
        self.live.contains(&rank)
    }

    /// The configured per-rollback resume overhead (elastic
    /// re-initialization, communicator rebuild, state broadcast).
    pub fn resume_overhead(&self) -> Duration {
        self.resume_overhead
    }

    /// A rank failed during `epoch`: remove it, record a rollback, return
    /// the overhead the job pays before re-running the epoch. `None` if
    /// the rank was already gone (duplicate detection) or unknown.
    pub fn fail_rank(&mut self, epoch: u32, rank: NodeId) -> Option<Duration> {
        let pos = self.live.iter().position(|&r| r == rank)?;
        self.live.remove(pos);
        self.rollbacks += 1;
        self.events.push(ElasticEvent::FailureRollback {
            epoch,
            rank,
            world_after: self.world(),
        });
        Some(self.resume_overhead)
    }

    /// A repaired rank rejoins before `epoch`.
    pub fn join_rank(&mut self, epoch: u32, rank: NodeId) -> bool {
        if self.live.contains(&rank) {
            return false;
        }
        let pos = self.live.partition_point(|&r| r < rank);
        self.live.insert(pos, rank);
        self.events.push(ElasticEvent::Join {
            epoch,
            rank,
            world_after: self.world(),
        });
        true
    }

    /// Number of epoch rollbacks so far.
    pub fn rollbacks(&self) -> u32 {
        self.rollbacks
    }

    /// The event log.
    pub fn events(&self) -> &[ElasticEvent] {
        &self.events
    }

    /// Position of `rank` within the live list — its data-parallel rank
    /// index for sharding after membership churn.
    pub fn shard_index(&self, rank: NodeId) -> Option<u32> {
        self.live.iter().position(|&r| r == rank).map(|p| p as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_shrinks_world_and_counts_rollback() {
        let mut e = ElasticState::new(4, Duration::from_secs(30));
        assert_eq!(e.world(), 4);
        let overhead = e.fail_rank(2, NodeId(1)).unwrap();
        assert_eq!(overhead, Duration::from_secs(30));
        assert_eq!(e.world(), 3);
        assert!(!e.is_live(NodeId(1)));
        assert_eq!(e.rollbacks(), 1);
        assert_eq!(
            e.events()[0],
            ElasticEvent::FailureRollback {
                epoch: 2,
                rank: NodeId(1),
                world_after: 3
            }
        );
    }

    #[test]
    fn duplicate_failure_is_none() {
        let mut e = ElasticState::new(2, Duration::ZERO);
        assert!(e.fail_rank(0, NodeId(0)).is_some());
        assert!(e.fail_rank(0, NodeId(0)).is_none());
        assert!(e.fail_rank(0, NodeId(9)).is_none(), "unknown rank");
        assert_eq!(e.rollbacks(), 1);
    }

    #[test]
    fn shard_indices_compact_after_failure() {
        let mut e = ElasticState::new(4, Duration::ZERO);
        e.fail_rank(1, NodeId(1));
        assert_eq!(e.shard_index(NodeId(0)), Some(0));
        assert_eq!(e.shard_index(NodeId(1)), None);
        assert_eq!(e.shard_index(NodeId(2)), Some(1));
        assert_eq!(e.shard_index(NodeId(3)), Some(2));
    }

    #[test]
    fn rejoin_restores_order() {
        let mut e = ElasticState::new(3, Duration::ZERO);
        e.fail_rank(0, NodeId(1));
        assert!(e.join_rank(2, NodeId(1)));
        assert!(!e.join_rank(2, NodeId(1)), "double join rejected");
        assert_eq!(e.live_ranks(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(e.shard_index(NodeId(1)), Some(1));
    }

    #[test]
    fn repeated_failures_to_empty() {
        let mut e = ElasticState::new(2, Duration::ZERO);
        e.fail_rank(0, NodeId(0));
        e.fail_rank(0, NodeId(1));
        assert_eq!(e.world(), 0);
        assert_eq!(e.rollbacks(), 2);
    }
}
