//! Quickstart: boot a fault-tolerant cache cluster, lose a node
//! mid-training, and keep going.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ft_cache::prelude::*;
use ft_cache::storage::verify_synth;

fn main() {
    println!("== FT-Cache quickstart ==\n");

    // 1. A 4-node cluster running the paper's hash-ring recaching design.
    let cluster =
        Cluster::start(ClusterConfig::small(4, FtPolicy::RingRecache)).expect("boot cluster");
    let paths = cluster.stage_dataset("train", 64, 4096);
    println!(
        "staged {} files ({} KiB each) on the PFS",
        paths.len(),
        4096 / 1024
    );

    // 2. Epoch 1: every read misses, servers fetch from the PFS and the
    //    data movers recache onto node-local NVMe.
    let client = cluster.client(0);
    for p in &paths {
        client.read(p).unwrap();
    }
    std::thread::sleep(std::time::Duration::from_millis(100));
    println!(
        "epoch 1: {} PFS fetches, caches now hold {:?} objects/node",
        cluster.pfs().total_reads(),
        cluster.cached_objects_per_node()
    );

    // 3. Epoch 2 is PFS-free.
    cluster.pfs().reset_read_counters();
    for p in &paths {
        client.read(p).unwrap();
    }
    println!(
        "epoch 2: {} PFS reads (all NVMe hits)",
        cluster.pfs().total_reads()
    );

    // 4. Kill a node the way SLURM drains one: it just goes silent.
    println!("\n-- killing n2 --");
    cluster.kill(NodeId(2));

    // 5. Training continues; lost files are recached exactly once.
    cluster.pfs().reset_read_counters();
    for pass in 1..=3 {
        for p in &paths {
            let bytes = client.read(p).unwrap();
            assert!(verify_synth(p, &bytes), "corruption on {p}");
        }
        println!(
            "post-failure pass {pass}: cumulative PFS reads = {}",
            cluster.pfs().total_reads()
        );
    }

    let m = cluster.metrics();
    println!(
        "\nmetrics: {} reads ok, {} timeouts, {} nodes declared failed, {} files recached",
        m.clients.reads_ok,
        m.clients.rpc_timeouts,
        m.clients.nodes_declared_failed,
        m.files_recached
    );
    println!(
        "cache distribution after failover: {:?} objects/node (n2 is dead)",
        cluster.cached_objects_per_node()
    );
    cluster.shutdown();
    println!("\nok: every byte verified across the failure.");
}
