//! Failure drill: cascading node failures, byte-level verification at
//! every stage, then elastic grow-back of a repaired node.
//!
//! ```sh
//! cargo run --release --example failure_drill
//! ```

use ft_cache::prelude::*;
use ft_cache::storage::verify_synth;

fn verify_all(client: &HvacClient, paths: &[String]) -> usize {
    let mut ok = 0;
    for p in paths {
        let bytes = client.read(p).expect("read must survive failures");
        assert!(verify_synth(p, &bytes), "corruption on {p}");
        ok += 1;
    }
    ok
}

fn main() {
    println!("== FT-Cache failure drill ==\n");
    let cluster =
        Cluster::start(ClusterConfig::small(6, FtPolicy::RingRecache)).expect("boot cluster");
    let paths = cluster.stage_dataset("train", 96, 1024);
    let client = cluster.client(0);

    // Warm epoch.
    verify_all(&client, &paths);
    std::thread::sleep(std::time::Duration::from_millis(100));
    println!(
        "warm: {} files across nodes {:?}",
        paths.len(),
        cluster.cached_objects_per_node()
    );

    // Kill nodes one by one; verify everything after each loss.
    for victim in [1u32, 3, 4] {
        cluster.kill(NodeId(victim));
        // Two passes: detection (timeout_limit) + recache completion.
        verify_all(&client, &paths);
        let ok = verify_all(&client, &paths);
        std::thread::sleep(std::time::Duration::from_millis(100));
        println!(
            "killed n{victim}: {ok}/{} verified; live={:?}; cached/node={:?}",
            paths.len(),
            client
                .live_nodes()
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>(),
            cluster.cached_objects_per_node()
        );
    }

    // Repair and grow back: n3 returns with a cold cache and its original
    // ring position, so its old keys route home and refill on miss.
    println!("\nreviving n3 (elastic grow-back)…");
    cluster.revive(NodeId(3)).expect("revive");
    let ok = verify_all(&client, &paths);
    std::thread::sleep(std::time::Duration::from_millis(100));
    println!(
        "after rejoin: {ok}/{} verified; live={:?}; cached/node={:?}",
        paths.len(),
        client
            .live_nodes()
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>(),
        cluster.cached_objects_per_node()
    );

    let m = cluster.metrics();
    println!(
        "\ntotals: {} reads ok, {} timeouts, {} declared failed, {} recached files",
        m.clients.reads_ok,
        m.clients.rpc_timeouts,
        m.clients.nodes_declared_failed,
        m.files_recached
    );
    cluster.shutdown();
    println!("drill complete: zero corrupt or lost reads across 3 failures + 1 rejoin.");
}
