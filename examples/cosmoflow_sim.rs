//! CosmoFlow-shaped training, two ways:
//!
//! 1. **Threaded**: a real in-process cluster (threads, RPCs, timeouts)
//!    running the batch-synchronous elastic training driver with a
//!    mid-epoch node failure.
//! 2. **Simulated**: the discrete-event cluster sweeping 64–1024 nodes —
//!    the configuration of the paper's Figure 5.
//!
//! ```sh
//! cargo run --release --example cosmoflow_sim
//! ```

use ft_cache::prelude::*;
use ft_cache::train::ReadBackend;
use std::sync::Arc;
use std::time::Duration;

fn threaded_run() {
    println!("== threaded mode: 4 ranks, failure in epoch 1 ==");
    let cluster =
        Cluster::start(ClusterConfig::small(4, FtPolicy::RingRecache)).expect("boot cluster");
    let dataset = Dataset::tiny(48, 2048);
    for i in 0..dataset.train_samples {
        let p = dataset.train_path(i);
        cluster.pfs().stage(&p, synth_bytes(&p, 2048));
    }

    let backends: Vec<Arc<dyn ReadBackend>> = (0..4)
        .map(|r| cluster.client(r) as Arc<dyn ReadBackend>)
        .collect();
    let cluster = Arc::new(cluster);
    let kill_cluster = Arc::clone(&cluster);
    let kill: Arc<dyn Fn(NodeId) + Send + Sync> = Arc::new(move |n| kill_cluster.kill(n));

    let config = TrainConfig {
        epochs: 3,
        per_rank_batch: 4,
        resume_overhead: Duration::from_millis(50),
        verify_content: true,
    };
    let mut driver = TrainDriver::new(dataset, 11, config, backends, kill);
    let report = driver.run(&[FaultSpec {
        epoch: 1,
        step: 1,
        node: NodeId(2),
    }]);

    for e in &report.epochs {
        println!(
            "  epoch {}: {:>6.0} ms, {} attempt(s), world {}, {} samples",
            e.epoch,
            e.wall.as_secs_f64() * 1e3,
            e.attempts,
            e.world_at_completion,
            e.samples_read
        );
    }
    println!(
        "  outcome: {:?}, rollbacks {}, total {:.2}s\n",
        report.outcome,
        report.rollbacks,
        report.total_wall.as_secs_f64()
    );
    assert!(report.completed());
}

fn simulated_sweep() {
    println!("== simulated mode: CosmoFlow/64 across node counts (paper Fig 5 shape) ==");
    let workload = SimWorkload::cosmoflow(64);
    let cal = SimCalibration::frontier();
    println!(
        "  {} samples x {} epochs, one failure at epoch 1",
        workload.samples, workload.epochs
    );
    println!(
        "  {:>6} {:>12} {:>12} {:>12}",
        "nodes", "NoFT clean", "FT/PFS+fail", "FT/NVMe+fail"
    );
    for nodes in [64u32, 256, 1024] {
        let fault = [FaultEvent {
            epoch: 1,
            step: 0,
            node: NodeId(nodes / 2),
        }];
        let clean = SimCluster::new(nodes, FtPolicy::NoFt, workload.samples, cal.clone())
            .run(workload, &[]);
        let pfs = SimCluster::new(nodes, FtPolicy::PfsRedirect, workload.samples, cal.clone())
            .run(workload, &fault);
        let ring = SimCluster::new(nodes, FtPolicy::RingRecache, workload.samples, cal.clone())
            .run(workload, &fault);
        println!(
            "  {:>6} {:>11.1}s {:>11.1}s {:>11.1}s",
            nodes, clean.total_s, pfs.total_s, ring.total_s
        );
        assert!(ring.total_s < pfs.total_s);
    }
    println!("  (FT w/ NVMe < FT w/ PFS at every scale — the paper's headline)");
}

fn main() {
    threaded_run();
    simulated_sweep();
}
