// probe: read completes at t=2 returning digest 7; the ONLY write of 7 is invoked at t=10.
// No linearization exists (read precedes the write in real time), so this must be a violation.
use ftc_analysis::linz::check_history;
use ftc_hashring::NodeId;
use ftc_net::{OpKind, OpRecord};
use std::time::Duration;
fn ms(n: u64) -> Duration {
    Duration::from_millis(n)
}
fn main() {
    let ops = vec![
        OpRecord {
            id: 0,
            actor: NodeId(100),
            kind: OpKind::Read,
            key: "a".into(),
            node: NodeId(1),
            epoch: 0,
            invoke: ms(1),
            ret: ms(2),
            digest: 7,
            handoff: false,
        },
        OpRecord {
            id: 0,
            actor: NodeId(9),
            kind: OpKind::Write,
            key: "a".into(),
            node: NodeId(9),
            epoch: 0,
            invoke: ms(10),
            ret: ms(10),
            digest: 7,
            handoff: false,
        },
    ];
    let r = check_history(&ops);
    println!(
        "passed={} violations={:?} inconclusive={}",
        r.passed(),
        r.violations,
        r.inconclusive
    );
}
