//! Load-balance explorer: how virtual nodes spread a failed node's keys
//! (the mechanism behind Fig. 6(b)), and how the §IV-B placement
//! alternatives compare on disruption.
//!
//! ```sh
//! cargo run --release --example load_balance
//! ```

use ft_cache::hashring::stats::imbalance_factor;
use ft_cache::prelude::*;
use ft_cache::sim::placement_disruption;

fn main() {
    println!("== virtual nodes vs balance (64 physical nodes, 50k keys) ==\n");
    let keys: Vec<String> = (0..50_000)
        .map(|i| format!("train/sample_{i:07}.tfrecord"))
        .collect();

    println!(
        "{:>7} {:>14} {:>18} {:>16}",
        "vnodes", "max/mean load", "receivers on kill", "ring tokens"
    );
    for vnodes in [1u32, 10, 100, 500] {
        let ring = HashRing::with_nodes(64, vnodes);
        let loads = ring.load_of_keys(keys.iter().map(String::as_str));
        let counts: Vec<u64> = loads.values().copied().collect();
        let dist = ring.failover_distribution(
            NodeId(7),
            keys.iter().map(|k| ft_cache::hashring::hash::key_hash(k)),
        );
        println!(
            "{:>7} {:>14.3} {:>18} {:>16}",
            vnodes,
            imbalance_factor(&counts),
            dist.len(),
            ring.token_count()
        );
    }
    println!("\n(the paper's trade-off: more vnodes = better spread, bigger ring)");

    println!("\n== placement disruption on one failure (64 nodes, 50k keys) ==\n");
    println!("{:>12} {:>10} {:>12}", "strategy", "moved", "lost (min)");
    for row in placement_disruption(64, 50_000, 9) {
        println!(
            "{:>12} {:>9.2}% {:>11.2}%",
            row.strategy,
            100.0 * row.moved_fraction,
            100.0 * row.lost_fraction
        );
    }
    println!("\n(§IV-B: modulo reshuffles almost everything; the ring moves only what died)");
}
