//! Reproduce the paper's §III failure analysis end to end: generate the
//! calibrated synthetic Frontier trace and print Table I, Figure 1 and
//! Figure 2.
//!
//! ```sh
//! cargo run --release --example slurm_report
//! ```

use ft_cache::slurm::{
    by_elapsed, by_node_count, census, overall_mean_elapsed, render, weekly_elapsed, TraceGenerator,
};

fn main() {
    let gen = TraceGenerator::frontier();
    let weeks = gen.config().weeks;
    let trace = gen.generate();
    println!(
        "generated {} job records over {} weeks\n",
        trace.len(),
        weeks
    );

    print!("{}", render::render_table1(&census(&trace)));
    println!();
    print!(
        "{}",
        render::render_fig1(&weekly_elapsed(&trace, weeks), overall_mean_elapsed(&trace))
    );
    println!();
    print!(
        "{}",
        render::render_fig2(&by_node_count(&trace), "node count")
    );
    println!();
    print!(
        "{}",
        render::render_fig2(&by_elapsed(&trace), "elapsed (min)")
    );
}
