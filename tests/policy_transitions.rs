//! Property test: epoch-fenced policy transitions (PR 6 satellite).
//!
//! Random interleavings of `set_policy` overrides with node kills and
//! revives, driven on the virtual clock so every schedule replays
//! deterministically. After each schedule the cluster must still satisfy
//! the recovery invariants the chaos harness enforces:
//!
//! - every read returns ground-truth bytes (no stale serving across a
//!   posture or replication switch),
//! - the recovery engine quiesces within the campaign deadline even when
//!   a switch fences its in-flight jobs,
//! - the happens-before checker finds no races in the trace, and no read
//!   is attributed to a policy epoch the controller had already retired.

use ft_cache::core::{Cluster, ClusterConfig, ControllerConfig, FtPolicy, RecoveryConfig};
use ft_cache::hashring::NodeId;
use ft_cache::net::{TraceEventKind, TraceRecord};
use ft_cache::storage::synth_bytes;
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

const NODES: u32 = 4;
const FILES: usize = 18;
const FILE_SIZE: usize = 48;

/// Campaign-scale timing: millisecond detector TTLs and controller ticks
/// so schedules finish in simulated milliseconds.
fn cluster_config(seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::small(NODES, FtPolicy::RingRecache);
    cfg.ft.detector.ttl = Duration::from_millis(15);
    cfg.ft.detector.timeout_limit = 2;
    cfg.ft.detector.suspicion_window = Duration::from_secs(2);
    cfg.ft.retry.max_attempts = 16;
    cfg.ft.retry.base_backoff = Duration::from_micros(200);
    cfg.ft.retry.max_backoff = Duration::from_millis(3);
    cfg.ft.retry.deadline_budget = Duration::from_secs(2);
    cfg.seed = seed;
    cfg
}

fn controller_config() -> ControllerConfig {
    ControllerConfig {
        tick: Duration::from_millis(5),
        cooldown: Duration::from_millis(60),
        decay: Duration::from_millis(300),
        prior_weight: 0.05,
        escalate: 2.0,
        deescalate: 0.5,
        ..Default::default()
    }
}

/// Per-actor scan for reads attributed to a retired policy epoch, in
/// recording order (sound on the virtual clock, where epoch capture and
/// trace recording are atomic — same scan the chaos harness runs).
fn retired_policy_reads(log: &[TraceRecord]) -> u64 {
    let mut current: HashMap<u32, u64> = HashMap::new();
    let mut stale = 0u64;
    for r in log {
        match &r.kind {
            TraceEventKind::PolicyChange { new_epoch, .. } => {
                let e = current.entry(r.actor.0).or_insert(0);
                *e = (*e).max(*new_epoch);
            }
            TraceEventKind::PolicyRead { policy_epoch, .. }
                if *policy_epoch < current.get(&r.actor.0).copied().unwrap_or(0) =>
            {
                stale += 1;
            }
            _ => {}
        }
    }
    stale
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_policy_switch_kill_interleavings_hold_the_invariants(
        seed in 0u64..1_000_000,
        ops in prop::collection::vec(0usize..5, 4..10),
    ) {
        ftc_time::with_virtual(|clock| {
            let cluster = Cluster::start_with_clock(cluster_config(seed), clock.clone())
                .expect("cluster boots");
            cluster.network().enable_tracing();
            let paths = cluster.stage_dataset("policy", FILES, FILE_SIZE);
            let client = cluster
                .client_adaptive(
                    0,
                    RecoveryConfig { probe: false, ..Default::default() },
                    controller_config(),
                )
                .expect("adaptive client boots");
            let controller = client.controller().expect("controller attached").clone();
            let cc = controller_config();

            let read_pass = |label: &str| {
                for p in &paths {
                    match client.read(p) {
                        Ok(bytes) => prop_assert_eq!(
                            bytes,
                            synth_bytes(p, FILE_SIZE),
                            "stale or corrupt read of {} ({})", p, label
                        ),
                        Err(e) => prop_assert!(false, "read {} failed ({}): {}", p, label, e),
                    }
                }
            };

            // Warm pass, then one forced transition so every schedule
            // exercises at least one epoch-fenced switch.
            read_pass("warm");
            controller.set_policy(cc.burst);

            let mut killed: Vec<NodeId> = Vec::new();
            for &op in &ops {
                match op {
                    // Keep at least two servers alive so the ring never
                    // empties mid-schedule.
                    0 if killed.len() < 2 => {
                        let victim = (1..NODES)
                            .map(NodeId)
                            .find(|n| !killed.contains(n))
                            .expect("a live victim exists");
                        killed.push(victim);
                        cluster.kill(victim);
                    }
                    1 => {
                        if let Some(n) = killed.pop() {
                            cluster.revive(n).expect("revive repaired node");
                        }
                    }
                    2 => controller.set_policy(cc.quiet),
                    3 => controller.set_policy(cc.burst),
                    _ => read_pass("mid-schedule"),
                }
            }

            // Final sweep under whatever policy the schedule left live:
            // integrity must hold and recovery must drain.
            read_pass("final");
            if let Some(engine) = client.recovery() {
                prop_assert!(
                    engine.wait_quiesced(Duration::from_secs(3)),
                    "recovery engine failed to quiesce after the schedule"
                );
            }
            let _ = cluster.wait_movers_drained(Duration::from_secs(2));

            let log = cluster.network().tracer().map(|t| t.take()).unwrap_or_default();
            prop_assert!(!log.is_empty(), "tracing was enabled but captured nothing");
            let findings = ftc_analysis::check_trace(&log);
            prop_assert!(
                findings.is_empty(),
                "happens-before checker flagged races: {:?}",
                findings.iter().map(|f| f.to_string()).collect::<Vec<_>>()
            );
            prop_assert_eq!(
                retired_policy_reads(&log),
                0,
                "a read was attributed to a retired policy epoch"
            );
            cluster.shutdown();
        });
    }
}
