//! Integration: the three §V systems exercised end-to-end on the threaded
//! cluster — correctness across failures and the PFS-traffic invariants
//! that define each policy.

use ft_cache::prelude::*;
use ft_cache::storage::verify_synth;
use std::time::Duration;

const FILES: usize = 32;
const SIZE: usize = 512;

fn epoch(client: &HvacClient, paths: &[String]) {
    for p in paths {
        let bytes = client.read(p).expect("ft policies must survive");
        assert!(verify_synth(p, &bytes), "corruption on {p}");
    }
}

/// Clock-aware settle: wait until every live server's mover queue has
/// drained, so PFS accounting sees all landed copies.
fn settle(cluster: &Cluster) {
    assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
}

#[test]
fn ring_recache_full_lifecycle() {
    let cluster =
        Cluster::start(ClusterConfig::small(5, FtPolicy::RingRecache)).expect("boot cluster");
    let paths = cluster.stage_dataset("train", FILES, SIZE);
    let client = cluster.client(0);

    epoch(&client, &paths); // warm
    settle(&cluster);
    assert_eq!(
        cluster.pfs().total_reads(),
        FILES as u64,
        "one fetch per file"
    );

    // Steady state: zero PFS traffic.
    cluster.pfs().reset_read_counters();
    epoch(&client, &paths);
    assert_eq!(cluster.pfs().total_reads(), 0);

    // Failure: detection + recache; afterwards PFS-free again.
    cluster.kill(NodeId(2));
    cluster.pfs().reset_read_counters();
    epoch(&client, &paths); // detection + first recaches
    epoch(&client, &paths); // suspect-window files recache now
    settle(&cluster);
    let recovery_reads = cluster.pfs().total_reads();
    assert!(recovery_reads > 0, "lost files must be refetched");
    assert!(
        recovery_reads <= FILES as u64,
        "recovery must not re-read the whole dataset: {recovery_reads}"
    );

    cluster.pfs().reset_read_counters();
    epoch(&client, &paths);
    epoch(&client, &paths);
    assert_eq!(
        cluster.pfs().total_reads(),
        0,
        "post-recache epochs are PFS-free (the paper's one-extra-access claim)"
    );

    // No file was ever read from the PFS more than 1 (warm) + 2
    // (suspect + recache) times in total across the whole lifecycle.
    assert!(cluster.pfs().files_read_more_than(0).is_empty());
    cluster.shutdown();
}

#[test]
fn pfs_redirect_pays_every_epoch() {
    let cluster =
        Cluster::start(ClusterConfig::small(4, FtPolicy::PfsRedirect)).expect("boot cluster");
    let paths = cluster.stage_dataset("train", FILES, SIZE);
    let client = cluster.client(0);

    epoch(&client, &paths);
    settle(&cluster);
    let lost: Vec<&String> = paths
        .iter()
        .filter(|p| client.owner_of(p) == Some(NodeId(1)))
        .collect();
    assert!(!lost.is_empty(), "node 1 must own some files");

    cluster.kill(NodeId(1));
    cluster.pfs().reset_read_counters();
    for pass in 1..=3u64 {
        epoch(&client, &paths);
        for p in &lost {
            assert_eq!(
                cluster.pfs().reads_of(p),
                pass,
                "redirect reads {p} from the PFS once per epoch"
            );
        }
    }
    // Static placement still names the dead node.
    assert_eq!(client.owner_of(lost[0]), Some(NodeId(1)));
    assert!(client.failed_nodes().contains(&NodeId(1)));
    cluster.shutdown();
}

#[test]
fn noft_dies_with_the_node() {
    let cluster = Cluster::start(ClusterConfig::small(3, FtPolicy::NoFt)).expect("boot cluster");
    let paths = cluster.stage_dataset("train", FILES, SIZE);
    let client = cluster.client(0);
    epoch(&client, &paths);

    let victim_file = paths
        .iter()
        .find(|p| client.owner_of(p) == Some(NodeId(0)))
        .expect("node 0 owns something");
    cluster.kill(NodeId(0));
    assert_eq!(
        client.read(victim_file).unwrap_err(),
        ReadError::NodeFailed(NodeId(0)),
        "baseline HVAC aborts on first failure"
    );
    cluster.shutdown();
}

#[test]
fn all_policies_agree_on_healthy_bytes() {
    // The three systems must be byte-identical when nothing fails.
    let mut contents: Vec<Vec<u8>> = Vec::new();
    for policy in [FtPolicy::NoFt, FtPolicy::PfsRedirect, FtPolicy::RingRecache] {
        let cluster = Cluster::start(ClusterConfig::small(4, policy)).expect("boot cluster");
        let paths = cluster.stage_dataset("train", 16, 256);
        let client = cluster.client(0);
        let mut cat = Vec::new();
        for p in &paths {
            cat.extend_from_slice(&client.read(p).unwrap());
        }
        contents.push(cat);
        cluster.shutdown();
    }
    assert_eq!(contents[0], contents[1]);
    assert_eq!(contents[1], contents[2]);
}

#[test]
fn concurrent_ranks_under_failure() {
    let cluster = std::sync::Arc::new(
        Cluster::start(ClusterConfig::small(4, FtPolicy::RingRecache)).expect("boot cluster"),
    );
    let paths = cluster.stage_dataset("train", 40, 256);
    let clients: Vec<_> = (0..4).map(|r| cluster.client(r)).collect();

    // Warm in parallel.
    let mut joins = Vec::new();
    for c in &clients {
        let c = std::sync::Arc::clone(c);
        let paths = paths.clone();
        joins.push(std::thread::spawn(move || epoch(&c, &paths)));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Kill mid-flight while all ranks read.
    let killer = {
        let cluster = std::sync::Arc::clone(&cluster);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            cluster.kill(NodeId(3));
        })
    };
    let mut joins = Vec::new();
    for c in &clients {
        let c = std::sync::Arc::clone(c);
        let paths = paths.clone();
        joins.push(std::thread::spawn(move || {
            for _ in 0..3 {
                epoch(&c, &paths);
            }
        }));
    }
    killer.join().unwrap();
    for j in joins {
        j.join().unwrap();
    }

    let m = cluster.metrics();
    assert_eq!(m.clients.reads_ok, (4 + 12) * 40);
    match std::sync::Arc::try_unwrap(cluster) {
        Ok(c) => c.shutdown(),
        Err(_) => panic!("all refs released"),
    }
}
