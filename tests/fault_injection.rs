//! Integration: fault-injection edge cases beyond the clean kill — lossy
//! links, transient slowdowns, replication under failure, and elastic
//! revive across policies.

use ft_cache::prelude::*;
use ft_cache::storage::verify_synth;
use std::time::Duration;

fn epoch(client: &HvacClient, paths: &[String]) {
    for p in paths {
        let bytes = client.read(p).expect("reads must survive");
        assert!(verify_synth(p, &bytes), "corruption on {p}");
    }
}

#[test]
fn lossy_network_does_not_false_positive() {
    // 20% message loss: reads get slower (retry via PFS redirects during
    // suspect windows) but no node should be declared dead, because
    // successes keep resetting the consecutive-timeout counters.
    let mut cfg = ClusterConfig::small(4, FtPolicy::RingRecache);
    cfg.ft.detector.timeout_limit = 3; // a bit more damping for the noise
    let cluster = Cluster::start(cfg).expect("boot cluster");
    let paths = cluster.stage_dataset("train", 30, 128);
    let client = cluster.client(0);
    epoch(&client, &paths); // warm cleanly

    cluster.network().set_drop_prob(0.2);
    for _ in 0..3 {
        epoch(&client, &paths);
    }
    cluster.network().set_drop_prob(0.0);

    // With p=0.2 per leg, three consecutive losses for the same node are
    // possible but the damping makes them rare; what must NEVER happen is
    // a *stuck* failure: after the noise clears, everything heals.
    assert!(
        cluster.killed_nodes().is_empty(),
        "no node was actually killed, but some are marked: {:?}",
        cluster.killed_nodes()
    );
    epoch(&client, &paths);
    let m = client.metrics().snapshot();
    assert!(m.rpc_timeouts > 0, "losses must have been observed");
    cluster.shutdown();
}

#[test]
fn slow_node_is_not_dead() {
    let cluster =
        Cluster::start(ClusterConfig::small(3, FtPolicy::RingRecache)).expect("boot cluster");
    let paths = cluster.stage_dataset("train", 18, 64);
    let client = cluster.client(0);
    epoch(&client, &paths);

    // A delay spike below the TTL: everything succeeds, nobody declared.
    cluster
        .network()
        .delay_node(NodeId(1), Duration::from_millis(10));
    epoch(&client, &paths);
    assert!(client.failed_nodes().is_empty());
    cluster.network().delay_node(NodeId(1), Duration::ZERO);
    cluster.shutdown();
}

#[test]
fn replicated_cluster_survives_failure_without_recache_burst() {
    let mut cfg = ClusterConfig::small(5, FtPolicy::RingRecache);
    cfg.ft.replication = 2;
    let cluster = Cluster::start(cfg).expect("boot cluster");
    let paths = cluster.stage_dataset("train", 40, 256);
    let client = cluster.client(0);

    epoch(&client, &paths); // warm: fetch + write-through replicas
    assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
    let m = client.metrics().snapshot();
    assert_eq!(m.replicas_written, 40);

    cluster.kill(NodeId(3));
    // Detection passes.
    epoch(&client, &paths);
    epoch(&client, &paths);
    cluster.pfs().reset_read_counters();
    epoch(&client, &paths);
    epoch(&client, &paths);
    assert_eq!(
        cluster.pfs().total_reads(),
        0,
        "successors already hold every lost file"
    );
    cluster.shutdown();
}

#[test]
fn revive_under_pfs_redirect_restores_cache_service() {
    // Even the redirect policy benefits from elastic grow-back: once the
    // node returns, its keys stop hitting the PFS.
    let cluster =
        Cluster::start(ClusterConfig::small(3, FtPolicy::PfsRedirect)).expect("boot cluster");
    let paths = cluster.stage_dataset("train", 24, 128);
    let client = cluster.client(0);
    epoch(&client, &paths);

    cluster.kill(NodeId(0));
    epoch(&client, &paths); // detection + redirects
    epoch(&client, &paths);
    assert!(client.failed_nodes().contains(&NodeId(0)));

    cluster.revive(NodeId(0)).expect("revive");
    assert!(!client.failed_nodes().contains(&NodeId(0)));
    // One epoch to refill the revived node's cold cache…
    epoch(&client, &paths);
    assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
    cluster.pfs().reset_read_counters();
    // …then its keys are served from NVMe again.
    epoch(&client, &paths);
    assert_eq!(
        cluster.pfs().total_reads(),
        0,
        "redirects must stop after revive"
    );
    cluster.shutdown();
}

#[test]
fn kill_during_first_epoch_cold_cache() {
    // The paper injects failures after epoch 1 so the cache is full; the
    // protocol must also survive the harder case of a failure while the
    // cache is still cold.
    let cluster =
        Cluster::start(ClusterConfig::small(4, FtPolicy::RingRecache)).expect("boot cluster");
    let paths = cluster.stage_dataset("train", 32, 64);
    let client = cluster.client(0);

    // Read only half the files, then kill a node mid-warm-up.
    for p in paths.iter().take(16) {
        client.read(p).unwrap();
    }
    cluster.kill(NodeId(1));
    epoch(&client, &paths);
    epoch(&client, &paths);
    // All files verified despite the cold-cache failure.
    epoch(&client, &paths);
    cluster.shutdown();
}
