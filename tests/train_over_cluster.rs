//! Integration: the Horovod-elastic training driver running over the real
//! threaded FT-Cache cluster, with a mid-epoch failure — the full paper
//! system end to end.

use ft_cache::prelude::*;
use ft_cache::train::{ReadBackend, TrainOutcome};
use std::sync::Arc;
use std::time::Duration;

fn rig(policy: FtPolicy, ranks: u32, samples: u32) -> (Arc<Cluster>, TrainDriver) {
    let cluster =
        Arc::new(Cluster::start(ClusterConfig::small(ranks, policy)).expect("boot cluster"));
    let dataset = Dataset::tiny(samples, 512);
    for i in 0..dataset.train_samples {
        let p = dataset.train_path(i);
        cluster.pfs().stage(&p, synth_bytes(&p, 512));
    }
    let backends: Vec<Arc<dyn ReadBackend>> = (0..ranks)
        .map(|r| cluster.client(r) as Arc<dyn ReadBackend>)
        .collect();
    let kc = Arc::clone(&cluster);
    let kill: Arc<dyn Fn(NodeId) + Send + Sync> = Arc::new(move |n| kc.kill(n));
    let config = TrainConfig {
        epochs: 3,
        per_rank_batch: 2,
        resume_overhead: Duration::from_millis(10),
        verify_content: true,
    };
    let driver = TrainDriver::new(dataset, 23, config, backends, kill);
    (cluster, driver)
}

#[test]
fn elastic_training_survives_mid_epoch_failure() {
    let (cluster, mut driver) = rig(FtPolicy::RingRecache, 4, 32);
    let report = driver.run(&[FaultSpec {
        epoch: 1,
        step: 1,
        node: NodeId(2),
    }]);
    assert!(report.completed(), "outcome: {:?}", report.outcome);
    assert_eq!(report.rollbacks, 1);
    assert_eq!(report.epochs.len(), 3);
    assert_eq!(report.epochs[0].world_at_completion, 4);
    assert_eq!(report.epochs[1].attempts, 2);
    assert_eq!(report.epochs[1].world_at_completion, 3);
    // Every completed epoch read (and content-verified) the full dataset.
    for e in &report.epochs {
        assert_eq!(e.samples_read, 32);
    }
    assert!(cluster.killed_nodes().contains(&NodeId(2)));
    let m = cluster.metrics();
    assert!(m.clients.nodes_declared_failed >= 1);
    if let Ok(c) = Arc::try_unwrap(cluster) {
        c.shutdown()
    }
}

#[test]
fn elastic_training_with_pfs_redirect_also_survives() {
    let (cluster, mut driver) = rig(FtPolicy::PfsRedirect, 4, 24);
    let report = driver.run(&[FaultSpec {
        epoch: 1,
        step: 0,
        node: NodeId(1),
    }]);
    assert!(report.completed());
    assert_eq!(report.rollbacks, 1);
    // Redirect keeps the PFS on the read path in epochs 1 and 2.
    let post = cluster.pfs().total_reads();
    assert!(post > 24, "lost keys must keep hitting the PFS: {post}");
    if let Ok(c) = Arc::try_unwrap(cluster) {
        c.shutdown()
    }
}

#[test]
fn noft_training_aborts_on_failure() {
    let (cluster, mut driver) = rig(FtPolicy::NoFt, 3, 18);
    let report = driver.run(&[FaultSpec {
        epoch: 1,
        step: 0,
        node: NodeId(0),
    }]);
    match report.outcome {
        TrainOutcome::Aborted { epoch, .. } => assert_eq!(epoch, 1),
        TrainOutcome::Completed => panic!("NoFT must abort under failure"),
    }
    if let Ok(c) = Arc::try_unwrap(cluster) {
        c.shutdown()
    }
}

#[test]
fn two_failures_two_rollbacks() {
    let (cluster, mut driver) = rig(FtPolicy::RingRecache, 5, 30);
    let report = driver.run(&[
        FaultSpec {
            epoch: 1,
            step: 0,
            node: NodeId(4),
        },
        FaultSpec {
            epoch: 2,
            step: 1,
            node: NodeId(0),
        },
    ]);
    assert!(report.completed());
    assert_eq!(report.rollbacks, 2);
    assert_eq!(report.epochs[2].world_at_completion, 3);
    assert_eq!(driver.elastic().world(), 3);
    if let Ok(c) = Arc::try_unwrap(cluster) {
        c.shutdown()
    }
}
