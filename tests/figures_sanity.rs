//! Integration: the figure-regeneration pipelines produce the paper's
//! qualitative shapes at CI scale.

use ft_cache::core::FtPolicy;
use ft_cache::sim::{fig5, fig6a, fig6b, SimCalibration, SimWorkload};
use ft_cache::slurm::{census, TraceConfig, TraceGenerator};

fn ci_workload() -> SimWorkload {
    SimWorkload {
        samples: 4096,
        sample_bytes: 2_200_000,
        epochs: 5,
        seed: 13,
        time_compression: 128,
    }
}

#[test]
fn fig5_headline_orderings() {
    let cal = SimCalibration::frontier();
    let cells = fig5(&[16, 64], ci_workload(), &cal, 3, 99);
    for n in [16u32, 64] {
        let get = |p: FtPolicy| {
            cells
                .iter()
                .find(|c| c.nodes == n && c.policy == p)
                .unwrap()
        };
        // Clean runs: NoFT ≤ FT variants; failure runs: ring < redirect.
        assert!(get(FtPolicy::NoFt).no_failure_s <= get(FtPolicy::RingRecache).no_failure_s);
        let ring = get(FtPolicy::RingRecache);
        let pfs = get(FtPolicy::PfsRedirect);
        assert!(
            ring.with_failures_s.unwrap() < pfs.with_failures_s.unwrap(),
            "n={n}: FT w/ NVMe must beat FT w/ PFS under failures"
        );
        assert!(ring.overhead_pct.unwrap() > 0.0);
        assert!(pfs.overhead_pct.unwrap() > ring.overhead_pct.unwrap());
    }
    // Scaling: clean time falls with node count.
    let t16 = cells
        .iter()
        .find(|c| c.nodes == 16 && c.policy == FtPolicy::NoFt)
        .unwrap()
        .no_failure_s;
    let t64 = cells
        .iter()
        .find(|c| c.nodes == 64 && c.policy == FtPolicy::NoFt)
        .unwrap()
        .no_failure_s;
    assert!(t64 < t16);
}

#[test]
fn fig6a_recache_approaches_no_failure() {
    let cal = SimCalibration::frontier();
    let mut rows = Vec::new();
    for seed in [1u64, 2, 3] {
        rows.extend(fig6a(&[16, 64], ci_workload(), &cal, seed));
    }
    let mean = |n: u32, f: fn(&ft_cache::sim::Fig6aRow) -> f64| {
        let xs: Vec<f64> = rows.iter().filter(|r| r.nodes == n).map(f).collect();
        xs.iter().sum::<f64>() / xs.len() as f64
    };
    for n in [16u32, 64] {
        let clean = mean(n, |r| r.no_failure_epoch_s);
        let ring = mean(n, |r| r.nvme_recache_epoch_s);
        let pfs = mean(n, |r| r.pfs_redirect_epoch_s);
        assert!(clean < ring, "n={n}: failure epochs cost more than clean");
        assert!(
            ring < pfs,
            "n={n}: recache {ring:.2} must beat redirect {pfs:.2}"
        );
    }
    // NVMe recaching approaches no-failure as nodes grow: the relative gap
    // shrinks from 16 to 64 nodes.
    let gap16 = mean(16, |r| r.nvme_recache_epoch_s) / mean(16, |r| r.no_failure_epoch_s);
    let gap64 = mean(64, |r| r.nvme_recache_epoch_s) / mean(64, |r| r.no_failure_epoch_s);
    assert!(
        gap64 < gap16 * 1.05,
        "relative victim-epoch cost should not grow with scale: {gap16:.3} -> {gap64:.3}"
    );
}

#[test]
fn fig6b_monotone_receivers_and_balance() {
    let rows = fig6b(&[1, 10, 100, 1000], 512, 32_768, 40, 5);
    for w in rows.windows(2) {
        assert!(
            w[1].receivers.mean > w[0].receivers.mean,
            "receivers grow with vnodes: {} -> {}",
            w[0].receivers.mean,
            w[1].receivers.mean
        );
        assert!(
            w[1].files_per_receiver.mean < w[0].files_per_receiver.mean,
            "files per receiver shrink with vnodes"
        );
    }
    // Diminishing returns: 10x vnodes from 100 to 1000 gains less than
    // 10x receivers.
    let r100 = rows[2].receivers.mean;
    let r1000 = rows[3].receivers.mean;
    assert!(r1000 / r100 < 5.0, "saturation expected: {r100} -> {r1000}");
}

#[test]
fn table1_census_matches_paper_within_tolerance() {
    let trace = TraceGenerator::frontier().generate();
    let c = census(&trace);
    assert_eq!(c.total_jobs, TraceConfig::default().total_jobs);
    let overall = c.overall_failure_ratio();
    assert!((overall - 0.2504).abs() < 0.01, "failure ratio {overall}");
    let nf = c.node_fail as f64 / c.total_failures as f64;
    let to = c.timeout as f64 / c.total_failures as f64;
    let jf = c.job_fail as f64 / c.total_failures as f64;
    assert!((nf - 0.0258).abs() < 0.015, "NodeFail share {nf}");
    assert!((to - 0.4492).abs() < 0.03, "Timeout share {to}");
    assert!((jf - 0.5250).abs() < 0.03, "JobFail share {jf}");
}
