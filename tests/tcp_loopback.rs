//! Loopback integration test for the real TCP transport: boots three
//! `ftc-server` processes on 127.0.0.1, runs read epochs through an
//! in-process `HvacClient` over `TcpTransport` (the exact client stack
//! `ftc-client` wraps), kills one server mid-run, and asserts the fleet
//! degrades gracefully and recovers — the paper's §IV-B story, but over
//! real sockets and real process death instead of the simulated fabric.

use ft_cache::fleet::dataset_paths;
use ftc_core::{CacheRequest, CacheResponse, FtConfig, FtPolicy, HvacClient, ReadVia};
use ftc_hashring::NodeId;
use ftc_storage::{synth_bytes, verify_synth, Pfs};
use ftc_time::ClockHandle;
use ftc_wire::tcp::{scrape_obs, TcpConfig, TcpTransport};
use std::io::{BufRead, BufReader};
use std::net::{SocketAddr, TcpListener};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::Duration;

const FILES: usize = 32;
const SIZE: usize = 16 * 1024;
const PREFIX: &str = "loop";

/// Reserve `n` distinct loopback ports by binding then dropping.
fn free_addrs(n: usize) -> Vec<SocketAddr> {
    let held: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind :0"))
        .collect();
    held.iter()
        .map(|l| l.local_addr().expect("local addr"))
        .collect()
}

const SIGTERM: i32 = 15;

extern "C" {
    /// libc `kill(2)`, declared directly — the workspace carries no libc
    /// crate and graceful teardown needs exactly one syscall from it.
    /// (`std::process::Child::kill` is always SIGKILL.)
    fn kill(pid: i32, sig: i32) -> i32;
}

/// Start one `ftc-server` process and block until it prints `READY`.
/// The stdout reader stays alive so teardown can read the `DRAINED`
/// snapshot the graceful SIGTERM path prints.
fn start_server(
    node: u32,
    peers: &str,
    prom: bool,
) -> (Child, BufReader<std::process::ChildStdout>) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_ftc-server"));
    cmd.args(["--node", &node.to_string(), "--peers", peers])
        .args(["--files", &FILES.to_string()])
        .args(["--size", &SIZE.to_string()])
        .args(["--prefix", PREFIX])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if prom {
        cmd.arg("--prom");
    }
    let mut child = cmd.spawn().expect("spawn ftc-server");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read READY line");
    assert!(
        line.starts_with("READY"),
        "server {node} did not come up: {line:?}"
    );
    (child, reader)
}

struct Fleet {
    children: Vec<(Child, Option<BufReader<std::process::ChildStdout>>)>,
}

impl Fleet {
    /// Graceful teardown: SIGTERM every surviving server, read its
    /// `DRAINED` snapshot, and require a clean exit. The mid-run crash in
    /// the test body stays `Child::kill` (SIGKILL) — that is the crash
    /// under test; this is the orderly path operators use.
    fn shutdown_gracefully(&mut self) {
        for (node, (c, reader)) in self.children.iter_mut().enumerate() {
            if matches!(c.try_wait(), Ok(Some(_))) {
                continue; // the mid-run kill victim, already reaped
            }
            // SAFETY: plain kill(2) aimed at a child this test spawned.
            let rc = unsafe { kill(c.id() as i32, SIGTERM) };
            assert_eq!(rc, 0, "SIGTERM to node {node} failed");
            let mut drained = String::new();
            if let Some(r) = reader {
                r.read_line(&mut drained).expect("read DRAINED line");
            }
            assert!(
                drained.starts_with("DRAINED"),
                "node {node} did not drain gracefully on SIGTERM: {drained:?}"
            );
            let status = c.wait().expect("reap drained server");
            assert!(
                status.success(),
                "node {node} exited {status} after a graceful drain"
            );
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        // Hard-kill fallback only: the happy path has already reaped
        // every child via `shutdown_gracefully`, and a panicking test
        // must not hang on a wedged server.
        for (c, _) in &mut self.children {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

/// One epoch of verified reads; returns (nvme, server_pfs, direct_pfs).
fn read_epoch(client: &HvacClient, paths: &[String]) -> (u32, u32, u32) {
    let (mut nvme, mut server_pfs, mut direct_pfs) = (0, 0, 0);
    for p in paths {
        let out = client.read_traced(p).expect("read must survive the fleet");
        assert!(verify_synth(p, &out.bytes), "corrupt bytes for {p}");
        assert_eq!(out.bytes, synth_bytes(p, SIZE));
        match out.via {
            ReadVia::ServerNvme(_) => nvme += 1,
            ReadVia::ServerPfsFetch(_) => server_pfs += 1,
            ReadVia::DirectPfs => direct_pfs += 1,
        }
    }
    (nvme, server_pfs, direct_pfs)
}

#[test]
fn three_process_fleet_survives_a_mid_run_kill() {
    let addrs = free_addrs(3);
    let peers = addrs
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(",");

    let mut fleet = Fleet {
        children: (0..3)
            .map(|n| {
                let (child, reader) = start_server(n, &peers, n == 0);
                (child, Some(reader))
            })
            .collect(),
    };

    // The in-process client: the same stack `ftc-client` wraps, minus the
    // process boundary, so the test can assert on detector state.
    let transport: TcpTransport<CacheRequest, CacheResponse> =
        TcpTransport::from_peer_list(&addrs, TcpConfig::default());
    let pfs = Arc::new(Pfs::in_memory());
    let paths = dataset_paths(PREFIX, FILES);
    for p in &paths {
        pfs.stage(p, synth_bytes(p, SIZE));
    }
    let mut config = FtConfig::for_policy(FtPolicy::RingRecache);
    config.detector.ttl = Duration::from_millis(100);
    let client = Arc::new(HvacClient::with_transport(
        NodeId(100),
        &transport,
        Arc::clone(&pfs),
        3,
        config,
    ));

    // Epoch 1: cold fleet — every read is a server-side PFS fetch that
    // seeds the owners' NVMe tiers over real sockets.
    let (nvme, server_pfs, direct) = read_epoch(&client, &paths);
    assert_eq!(server_pfs as usize + nvme as usize + direct as usize, FILES);
    assert!(
        server_pfs > 0,
        "cold epoch must fetch via servers, got nvme={nvme} direct={direct}"
    );

    // Epoch 2: warm fleet — NVMe hits dominate.
    let (nvme, _, _) = read_epoch(&client, &paths);
    assert!(
        nvme as usize > FILES / 2,
        "warm epoch should be cache-hit dominated, got {nvme}/{FILES}"
    );

    // The obs endpoint rides the same listener socket as the RPCs.
    let text = scrape_obs(addrs[0], Duration::from_secs(2)).expect("prom scrape");
    assert!(
        text.contains("ftc_nvme_resident_bytes"),
        "exposition text missing cache gauges:\n{text}"
    );

    // Mid-run kill: node 1 dies hard (SIGKILL — no FIN handshake
    // courtesy, exactly what a crashed node looks like).
    fleet.children[1].0.kill().expect("kill node 1");
    fleet.children[1].0.wait().expect("reap node 1");

    // Epoch 3 (degraded): every read still succeeds. Keys owned by the
    // dead node re-route to ring successors, which recache from their
    // own PFS mirrors; the detector declares node 1 failed along the way.
    let (_, _, _) = read_epoch(&client, &paths);
    assert!(
        client.failed_nodes().contains(&NodeId(1)),
        "detector never declared the killed node failed: {:?}",
        client.failed_nodes()
    );

    // Epoch 4 (recovered): the survivors now own and cache the dead
    // node's keys — the fleet is back to cache-hit dominated service.
    let (nvme, _, direct) = read_epoch(&client, &paths);
    assert!(
        nvme as usize > FILES / 2,
        "fleet never recovered to cache hits after the kill, got nvme={nvme} direct={direct}"
    );

    // Liveness sanity: the surviving servers still answer a fresh client.
    let fresh = HvacClient::with_transport(
        NodeId(101),
        &transport,
        pfs,
        3,
        FtConfig::for_policy(FtPolicy::RingRecache),
    );
    let clock = ClockHandle::wall();
    let t0 = clock.now();
    read_epoch(&fresh, &paths);
    assert!(
        clock.since(t0) < Duration::from_secs(30),
        "degraded fleet took pathologically long for a fresh client"
    );

    // Orderly teardown: the survivors drain on SIGTERM and exit 0 with a
    // DRAINED snapshot; only the crashed node went down without one.
    fleet.shutdown_gracefully();
}
