//! Virtual-time determinism and scale: the real threaded stack — servers,
//! movers, clients, detector, recovery engine — boots on a
//! `ftc_time::VirtualClock`, so entire chaos campaigns run in simulated
//! time. Two properties are asserted here:
//!
//! 1. **Determinism** — the same seed replays byte-identically, including
//!    every measured latency (they are simulated, not wall-clock). CI
//!    additionally diffs two full 128-node runs via `chaos --virtual`.
//! 2. **Scale** — a 256-node kill→detect→recache sweep completes within a
//!    small wall-time budget; in wall-clock mode the same campaign would
//!    spend minutes just sleeping through detector TTLs and settle waits.

use ft_cache::chaos::{run_campaign_virtual, CampaignOptions, ChaosPlan, RecoveryMode};
use ftc_core::FtPolicy;

#[test]
fn virtual_sweep_128_nodes_is_byte_identical() {
    let plan = ChaosPlan::scenario_scale_sweep(42, 128, 256);
    let opts = CampaignOptions {
        recovery: RecoveryMode::Proactive,
        ..Default::default()
    };
    let a = run_campaign_virtual(FtPolicy::RingRecache, &plan, opts);
    let b = run_campaign_virtual(FtPolicy::RingRecache, &plan, opts);
    assert!(a.passed(), "campaign failed: {a}");
    assert_eq!(
        a.render(),
        b.render(),
        "same seed must replay byte-identically on the virtual clock"
    );
    assert!(
        !a.detection_latencies().is_empty(),
        "sweep must observe at least one kill"
    );
}

#[test]
fn virtual_sweep_256_nodes_fits_wall_budget() {
    let plan = ChaosPlan::scenario_scale_sweep(7, 256, 256);
    let started = std::time::Instant::now();
    let report = run_campaign_virtual(
        FtPolicy::RingRecache,
        &plan,
        CampaignOptions {
            recovery: RecoveryMode::Proactive,
            ..Default::default()
        },
    );
    let wall = started.elapsed();
    assert!(report.passed(), "campaign failed: {report}");
    // 8 nodes die at this scale; only victims that owned at least one of
    // the staged keys draw client traffic and get declared.
    let detected = report.detection_latencies().len();
    assert!(
        (1..=8).contains(&detected),
        "expected 1..=8 detected kills, got {detected}"
    );
    assert!(
        wall < std::time::Duration::from_secs(5),
        "256-node virtual sweep took {wall:?}, budget 5s"
    );
}
