//! Workspace-level chaos campaigns: seeded fault schedules against the
//! threaded cluster, all four invariants checked for every policy.
//!
//! These are the same campaigns `cargo run -p ftc-bench --bin chaos`
//! drives; a handful of fixed seeds run in CI so regressions in the
//! retry/detector/recache machinery surface as invariant violations, not
//! just as flaky integration tests.

use ft_cache::chaos::{
    run_campaign, run_campaign_all_policies, run_campaign_sabotaged, run_campaign_virtual,
    CampaignOptions, ChaosAction, ChaosPlan,
};
use ft_cache::core::FtPolicy;

#[test]
fn seeded_campaigns_pass_all_invariants_for_every_policy() {
    for seed in [1u64, 2, 3] {
        for report in run_campaign_all_policies(seed) {
            assert!(report.passed(), "campaign failed: {report}");
        }
    }
}

#[test]
fn replaying_a_seed_yields_the_identical_plan_and_verdict() {
    let a = ChaosPlan::generate(7);
    let b = ChaosPlan::generate(7);
    assert_eq!(a, b, "plan must be a pure function of the seed");

    let r1 = run_campaign(FtPolicy::RingRecache, &a);
    let r2 = run_campaign(FtPolicy::RingRecache, &b);
    assert_eq!(r1.passed(), r2.passed());
    assert_eq!(r1.aborted, r2.aborted);
    assert_eq!(r1.reads_attempted, r2.reads_attempted);
}

#[test]
fn passing_campaigns_report_latencies_but_no_flight_dump() {
    // Hunt a seed whose plan contains a kill; under RingRecache the
    // report must carry kill-anchored detection/recovery latencies and,
    // since every invariant holds, no flight dump.
    for seed in 1..64u64 {
        let plan = ChaosPlan::generate(seed);
        if !plan
            .events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::Kill(_)))
        {
            continue;
        }
        let report = run_campaign(FtPolicy::RingRecache, &plan);
        assert!(report.passed(), "campaign failed: {report}");
        assert!(report.flight_dump.is_none(), "dump only on violations");
        assert!(
            !report.detection_latencies().is_empty(),
            "a killed node must yield a detection latency"
        );
        return;
    }
    panic!("no plan with a kill in 64 seeds");
}

#[test]
fn forced_invariant_violation_emits_flight_recorder_dump() {
    // Sabotage zeroes the recache budget, so the economy invariant must
    // fire — and a failing campaign must come with the flight recorder's
    // event dump for postmortem context (acceptance criterion for the
    // observability subsystem).
    for seed in 1..64u64 {
        let plan = ChaosPlan::generate(seed);
        if !plan
            .events
            .iter()
            .any(|e| matches!(e.action, ChaosAction::Kill(_)))
        {
            continue;
        }
        let report = run_campaign_sabotaged(FtPolicy::RingRecache, &plan);
        assert!(!report.passed(), "sabotaged campaign must fail: {report}");
        let dump = report.flight_dump.as_deref().expect("flight dump");
        assert!(dump.contains("flight recorder"));
        assert!(dump.contains("violation"));
        return;
    }
    panic!("no plan with a kill in 64 seeds");
}

#[test]
fn degraded_but_alive_node_is_never_declared_failed() {
    // Hunt a few seeds for plans that actually contain a degrade-only
    // node, and check invariant 4 holds under the most aggressive policy.
    // Runs on the virtual clock: the degrade delay is 30–70% of the TTL
    // by construction, so in simulated time it can *never* cross the
    // timeout — on the wall clock, host scheduling noise on a loaded CI
    // box occasionally pushed a 70%-delayed reply over the TTL and
    // flaked this test with a legitimate-looking false positive.
    let mut checked = 0;
    for seed in 0..64u64 {
        let plan = ChaosPlan::generate(seed);
        if plan.degraded_only.is_empty() {
            continue;
        }
        let report = run_campaign_virtual(FtPolicy::RingRecache, &plan, CampaignOptions::default());
        assert!(report.passed(), "campaign failed: {report}");
        checked += 1;
        if checked == 3 {
            return;
        }
    }
    panic!("no plan with a degrade-only node in 64 seeds");
}
