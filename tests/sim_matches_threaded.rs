//! Integration: three executions of the same scenario must agree at the
//! invariant level (who refetches what from the PFS):
//!
//! - the **threaded** cluster on the wall clock,
//! - the *same real stack* on a `VirtualClock` (cooperative, simulated
//!   time — every sleep, timeout and backoff is virtual),
//! - the calibrated **discrete-event simulator** fast path.

use ft_cache::prelude::*;
use std::time::Duration;

const NODES: u32 = 6;
const FILES: u32 = 60;

/// Run the real cluster on the given clock: warm epoch, kill node, three
/// more epochs; return post-failure PFS reads.
fn post_failure_reads_on(policy: FtPolicy, victim: NodeId, clock: ClockHandle) -> u64 {
    let cluster = Cluster::start_with_clock(ClusterConfig::small(NODES, policy), clock)
        .expect("boot cluster");
    // Identical paths to the simulator's canonical naming.
    let dataset = Dataset::tiny(FILES, 64);
    let paths: Vec<String> = (0..FILES).map(|i| dataset.train_path(i)).collect();
    for p in &paths {
        cluster.pfs().stage(p, synth_bytes(p, 64));
    }
    let client = cluster.client(0);
    for p in &paths {
        client.read(p).unwrap();
    }
    assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
    cluster.kill(victim);
    cluster.pfs().reset_read_counters();
    for _ in 0..3 {
        for p in &paths {
            client.read(p).unwrap();
        }
        assert!(cluster.wait_movers_drained(Duration::from_secs(5)));
    }
    let reads = cluster.pfs().total_reads();
    cluster.shutdown();
    reads
}

/// The real stack on the wall clock.
fn threaded_post_failure_reads(policy: FtPolicy, victim: NodeId) -> u64 {
    post_failure_reads_on(policy, victim, ClockHandle::wall())
}

/// The same real stack, cooperatively scheduled in virtual time.
fn virtual_post_failure_reads(policy: FtPolicy, victim: NodeId) -> u64 {
    with_virtual(|clock| post_failure_reads_on(policy, victim, clock))
}

/// Same scenario in the simulator; returns post-cold PFS reads.
fn simulated_post_failure_reads(policy: FtPolicy, victim: NodeId) -> u64 {
    let w = SimWorkload {
        samples: FILES,
        sample_bytes: 64,
        epochs: 4,
        seed: 1,
        time_compression: 1,
    };
    let r = SimCluster::new(NODES, policy, w.samples, SimCalibration::frontier()).run(
        w,
        &[FaultEvent {
            epoch: 1,
            step: 0,
            node: victim,
        }],
    );
    r.pfs_reads - u64::from(FILES) // subtract the cold epoch
}

#[test]
fn ring_recache_traffic_is_bounded_in_both_modes() {
    // Both modes bound post-failure PFS traffic by lost files plus the
    // detection window — never the whole dataset per epoch.
    let victim = NodeId(2);
    let threaded = threaded_post_failure_reads(FtPolicy::RingRecache, victim);
    let virtualized = virtual_post_failure_reads(FtPolicy::RingRecache, victim);
    let simulated = simulated_post_failure_reads(FtPolicy::RingRecache, victim);
    // Both modes use the same ring (same hashes, same vnodes), so the
    // lost-file count is identical; allow the detection-window slack.
    let ring = HashRing::with_nodes(NODES, DEFAULT_VNODES);
    let lost = (0..FILES)
        .filter(|&i| ring.owner(&Dataset::tiny(FILES, 64).train_path(i)) == Some(victim))
        .count() as u64;
    assert!(lost > 0);
    for (label, reads) in [
        ("threaded", threaded),
        ("virtual", virtualized),
        ("simulated", simulated),
    ] {
        assert!(
            reads >= lost,
            "{label}: every lost file must be refetched at least once ({reads} < {lost})"
        );
        assert!(
            reads <= lost * 2 + 8,
            "{label}: traffic must stay ~lost-file-sized ({reads} vs lost {lost})"
        );
    }
}

#[test]
fn pfs_redirect_traffic_scales_with_epochs_in_both_modes() {
    let victim = NodeId(1);
    // Static modulo placement in both modes.
    let dataset = Dataset::tiny(FILES, 64);
    let modulo = ModuloLost::count(&dataset, NODES, victim);
    assert!(modulo > 0);

    let threaded = threaded_post_failure_reads(FtPolicy::PfsRedirect, victim);
    let virtualized = virtual_post_failure_reads(FtPolicy::PfsRedirect, victim);
    let simulated = simulated_post_failure_reads(FtPolicy::PfsRedirect, victim);
    // 3 post-failure epochs in every rig → ≈ 3 × lost reads.
    for (label, reads) in [
        ("threaded", threaded),
        ("virtual", virtualized),
        ("simulated", simulated),
    ] {
        assert!(
            reads >= modulo * 3,
            "{label}: redirect pays per epoch ({reads} < 3x{modulo})"
        );
        assert!(
            reads <= modulo * 3 + 8,
            "{label}: but only for lost files ({reads} vs 3x{modulo})"
        );
    }
    // The threaded rig has no elastic rollback, so its traffic is exactly
    // 3 x lost; the simulator re-runs the victim epoch's aborted attempt,
    // whose detection-window reads add at most world x timeout_limit.
    assert_eq!(threaded, modulo * 3, "threaded redirect = once per epoch");
    assert_eq!(
        virtualized, threaded,
        "the virtual-clock run executes the same code path read for read"
    );
    assert!(
        simulated >= threaded && simulated <= threaded + u64::from(NODES) * 3,
        "simulated ({simulated}) must equal threaded ({threaded}) plus a bounded \
         aborted-attempt allowance"
    );
}

struct ModuloLost;
impl ModuloLost {
    fn count(dataset: &Dataset, nodes: u32, victim: NodeId) -> u64 {
        (0..dataset.train_samples)
            .filter(|&i| {
                let h = ft_cache::hashring::hash::key_hash(&dataset.train_path(i));
                (h % u64::from(nodes)) as u32 == victim.0
            })
            .count() as u64
    }
}
