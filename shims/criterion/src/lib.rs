//! Hermetic mini `criterion`: enough of the API for this workspace's
//! benches to compile and produce useful ns/iter numbers, with no
//! registry access. No statistics, plots, or baselines — a calibrated
//! timing loop and one output line per benchmark.
//!
//! When invoked with `--test` (as `cargo test` does for harness=false
//! bench targets) each benchmark body runs exactly once as a smoke test.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: std::env::args().any(|a| a == "--test"),
            sample_size: 100,
        }
    }
}

impl Criterion {
    /// Run `f` as a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.test_mode, self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A parameterized benchmark label.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label from a function name plus parameter.
    pub fn new(name: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Label from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Cap the measurement iterations for slow benchmarks.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run `f` as `group_name/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(self.criterion.test_mode, samples);
        f(&mut b);
        b.report(&label);
        self
    }

    /// Run `f` with a borrowed input as `group_name/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op; exists for API parity).
    pub fn finish(self) {}
}

/// Conversion into a [`BenchmarkId`] (allows `&str` or `BenchmarkId`).
pub trait IntoBenchmarkId {
    /// Convert.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Times closures handed to it by the benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    fn new(test_mode: bool, sample_size: usize) -> Self {
        Bencher {
            test_mode,
            sample_size,
            result: None,
        }
    }

    /// Measure `f`, called repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.result = Some((Duration::ZERO, 0));
            return;
        }
        // Warmup + calibration: find an iteration count that runs for
        // roughly the time budget, bounded by sample_size.
        black_box(f());
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let budget = Duration::from_millis(40);
        let iters = (budget.as_nanos() / once.as_nanos()).clamp(1, self.sample_size as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.result = Some((start.elapsed(), iters));
    }

    fn report(&self, label: &str) {
        match self.result {
            Some((_, 0)) => println!("bench {label}: ok (test mode)"),
            Some((elapsed, iters)) => {
                let per = elapsed.as_nanos() as f64 / iters as f64;
                println!("bench {label}: {per:.0} ns/iter ({iters} iters)");
            }
            None => println!("bench {label}: no measurement recorded"),
        }
    }
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 10,
        };
        let mut ran = false;
        c.bench_function("x", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            test_mode: true,
            sample_size: 10,
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(5);
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &v| {
            b.iter(|| v * 2)
        });
        g.finish();
    }
}
