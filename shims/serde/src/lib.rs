//! Hermetic stand-in for `serde`: marker traits with blanket impls plus
//! no-op derive macros. The workspace builds without registry access and
//! never invokes a serializer, so this is all the surface the code needs;
//! swapping the real serde back in is a Cargo.toml change only.

/// Marker for types that would be serializable under real serde.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for types that would be deserializable under real serde.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
