//! API-compatible subset of `crossbeam` (the `channel` module only),
//! backed by `Mutex<VecDeque>` + `Condvar`. The workspace builds
//! hermetically (no registry access), so the real crate is replaced by
//! this shim.
//!
//! Semantic notes relative to real crossbeam:
//! * `bounded(n)` does not apply backpressure — sends never block. The
//!   only bounded channels in this workspace are one-shot reply channels,
//!   so capacity is irrelevant to correctness.
//! * Disconnect semantics match: `send` fails once the receiver is gone,
//!   `recv` fails once every sender is gone and the queue is drained.

/// Multi-producer single-consumer channels with timeouts and disconnect
/// detection.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        cond: Condvar,
        senders: AtomicUsize,
        receiver_alive: AtomicBool,
    }

    /// Sending half; cheap to clone.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiver disconnected before the message was sent.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Every sender disconnected and the queue is empty.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Outcome of [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline expired with no message.
        Timeout,
        /// Every sender disconnected and the queue is empty.
        Disconnected,
    }

    /// Outcome of [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message queued right now.
        Empty,
        /// Every sender disconnected and the queue is empty.
        Disconnected,
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            senders: AtomicUsize::new(1),
            receiver_alive: AtomicBool::new(true),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel with a capacity hint. This shim does not apply
    /// backpressure; see the module docs.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::Relaxed);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake a blocked receiver so it can
                // observe the disconnect.
                self.shared.cond.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receiver_alive.store(false, Ordering::Release);
        }
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails iff the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if !self.shared.receiver_alive.load(Ordering::Acquire) {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(value);
            self.shared.cond.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Queued message count.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self.shared.cond.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        }

        /// Block with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .cond
                    .wait_timeout(q, deadline - now)
                    .unwrap_or_else(|p| p.into_inner());
                q = guard;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;
    use std::time::Duration;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn disconnect_on_receiver_drop() {
        let (tx, rx) = bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<u32>();
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= Duration::from_millis(20));
    }

    #[test]
    fn cross_thread() {
        let (tx, rx) = unbounded();
        let t = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        while let Ok(v) = rx.recv() {
            got.push(v);
        }
        t.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
