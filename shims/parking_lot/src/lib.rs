//! API-compatible subset of `parking_lot` backed by `std::sync`.
//!
//! The workspace builds hermetically (no registry access), so the real
//! crate is replaced by this shim. Poisoning is absorbed: a panic while a
//! lock is held does not poison it for later readers, matching
//! `parking_lot` semantics.

use std::sync::{self, PoisonError};

/// Mutual exclusion primitive; `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock; `read()`/`write()` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
