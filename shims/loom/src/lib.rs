//! Hermetic stand-in for `loom`, the C11-memory-model model checker.
//!
//! The real loom runs a model closure under a cooperative scheduler and
//! *exhaustively* enumerates thread interleavings (and a bounded set of
//! weak-memory reorderings). This environment has no registry access, so
//! this shim approximates the same API with a stress strategy: the model
//! runs many times on real OS threads, and every synchronisation
//! operation passes through a randomized preemption point
//! ([`yield_point`]) that forces a `yield_now` on a pseudo-random subset
//! of executions. That explores far more schedules than a bare loop —
//! each iteration perturbs the interleaving differently — but it is
//! probabilistic, not exhaustive, and it cannot surface reorderings the
//! host CPU never performs.
//!
//! Swapping the real crate back in is the usual one-line change in the
//! workspace manifest; the tests themselves are written against the
//! genuine loom API (`loom::model`, `loom::thread`, `loom::sync`).
//!
//! Iteration count defaults to 500 and can be overridden with the
//! `LOOM_MAX_ITER` environment variable.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

/// Run `f` repeatedly with randomized preemption; panics propagate.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_MAX_ITER")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500);
    for i in 0..iters {
        seed_thread(i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1));
        f();
    }
}

// Per-thread xorshift state for preemption decisions. Child threads seed
// themselves lazily from a global counter so each spawn interleaves
// differently even within one iteration.
static NEXT_SEED: StdAtomicU64 = StdAtomicU64::new(0x5eed);

thread_local! {
    static RNG: Cell<u64> = const { Cell::new(0) };
}

fn seed_thread(seed: u64) {
    RNG.with(|r| r.set(seed | 1));
}

/// Randomized preemption point: yields the OS scheduler on roughly half
/// of all visits, pattern varying per iteration and per thread.
pub fn yield_point() {
    let bit = RNG.with(|r| {
        let mut s = r.get();
        if s == 0 {
            // ordering: Relaxed — the seed counter only needs uniqueness,
            // not ordering with any other memory.
            s = NEXT_SEED.fetch_add(0x9e37_79b9, StdOrdering::Relaxed) | 1;
        }
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        r.set(s);
        s & 1
    });
    if bit == 1 {
        std::thread::yield_now();
    }
}

pub mod thread {
    //! `loom::thread` — spawn/yield with preemption points on entry.
    pub use std::thread::JoinHandle;

    /// Spawn a model thread (fresh preemption pattern).
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        std::thread::spawn(move || {
            crate::yield_point();
            f()
        })
    }

    /// Explicit scheduling point.
    pub fn yield_now() {
        crate::yield_point();
    }
}

pub mod sync {
    //! `loom::sync` — `Arc`, a preempting `Mutex`, and atomics.
    pub use std::sync::Arc;
    use std::sync::LockResult;

    /// `std::sync::Mutex` with a preemption point before each acquisition.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Wrap `value`.
        pub fn new(value: T) -> Self {
            Self(std::sync::Mutex::new(value))
        }

        /// Lock, after a randomized yield.
        pub fn lock(&self) -> LockResult<std::sync::MutexGuard<'_, T>> {
            crate::yield_point();
            self.0.lock()
        }

        /// Consume the mutex, returning the inner value.
        pub fn into_inner(self) -> LockResult<T> {
            self.0.into_inner()
        }
    }

    pub mod atomic {
        //! Atomics with a preemption point before every access.
        pub use std::sync::atomic::Ordering;

        macro_rules! preempting_atomic {
            ($name:ident, $inner:ty, $prim:ty) => {
                /// Std atomic wrapped with randomized preemption points.
                #[derive(Debug, Default)]
                pub struct $name($inner);

                impl $name {
                    /// Wrap `value`.
                    pub fn new(value: $prim) -> Self {
                        Self(<$inner>::new(value))
                    }

                    /// Atomic load (preceded by a yield point).
                    pub fn load(&self, order: Ordering) -> $prim {
                        crate::yield_point();
                        self.0.load(order)
                    }

                    /// Atomic store (preceded by a yield point).
                    pub fn store(&self, value: $prim, order: Ordering) {
                        crate::yield_point();
                        self.0.store(value, order);
                    }

                    /// Atomic add, returning the previous value.
                    pub fn fetch_add(&self, value: $prim, order: Ordering) -> $prim {
                        crate::yield_point();
                        self.0.fetch_add(value, order)
                    }

                    /// Atomic compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        crate::yield_point();
                        self.0.compare_exchange(current, new, success, failure)
                    }
                }
            };
        }

        preempting_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        preempting_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Std `AtomicBool` wrapped with randomized preemption points.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Wrap `value`.
            pub fn new(value: bool) -> Self {
                Self(std::sync::atomic::AtomicBool::new(value))
            }

            /// Atomic load (preceded by a yield point).
            pub fn load(&self, order: Ordering) -> bool {
                crate::yield_point();
                self.0.load(order)
            }

            /// Atomic store (preceded by a yield point).
            pub fn store(&self, value: bool, order: Ordering) {
                crate::yield_point();
                self.0.store(value, order);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Mutex};

    #[test]
    fn model_runs_and_threads_join() {
        std::env::set_var("LOOM_MAX_ITER", "8");
        super::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let m = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    let m = Arc::clone(&m);
                    super::thread::spawn(move || {
                        n.fetch_add(1, Ordering::Relaxed);
                        *m.lock().expect("unpoisoned") += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("model thread");
            }
            assert_eq!(n.load(Ordering::Relaxed), 2);
            assert_eq!(*m.lock().expect("unpoisoned"), 2);
        });
    }
}
