//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace builds hermetically (no registry access) and never
//! actually serializes anything — the derives exist so config structs can
//! keep their serde annotations for when a real serializer is wired in.
//! The companion `serde` shim provides blanket trait impls, so emitting
//! no code here is sufficient.

use proc_macro::TokenStream;

/// Accepts and discards a `Serialize` derive (including `#[serde(...)]`
/// attributes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `Deserialize` derive (including `#[serde(...)]`
/// attributes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
