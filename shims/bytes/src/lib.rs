//! API-compatible subset of the `bytes` crate: an immutable, cheaply
//! cloneable byte buffer backed by `Arc<[u8]>`. The workspace builds
//! hermetically (no registry access), so the real crate is replaced by
//! this shim.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable contiguous slice of memory.
#[derive(Clone)]
pub struct Bytes(Repr);

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<[u8]>),
}

impl Bytes {
    /// An empty buffer.
    pub const fn new() -> Self {
        Bytes(Repr::Static(&[]))
    }

    /// Wrap a `'static` slice with zero copying.
    pub const fn from_static(bytes: &'static [u8]) -> Self {
        Bytes(Repr::Static(bytes))
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Repr::Shared(Arc::from(data)))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Copy out to an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Wrap an already-shared buffer with zero copying.
    pub fn from_shared(data: Arc<[u8]>) -> Self {
        Bytes(Repr::Shared(data))
    }

    /// The shared backing of this buffer. Zero-copy for shared buffers
    /// (the common case); a `'static` slice pays a one-time copy into a
    /// fresh allocation.
    pub fn into_shared(self) -> Arc<[u8]> {
        match self.0 {
            Repr::Static(s) => Arc::from(s),
            Repr::Shared(a) => a,
        }
    }

    fn as_slice(&self) -> &[u8] {
        match &self.0 {
            Repr::Static(s) => s,
            Repr::Shared(a) => a,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Repr::Shared(Arc::from(v)))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        if self.len() > 64 {
            write!(f, "…({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(&a[..], &[1, 2, 3]);
        assert_eq!(Bytes::from_static(b"xyz").len(), 3);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clone_is_shallow() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn shared_round_trip_preserves_the_allocation() {
        let arc: Arc<[u8]> = Arc::from(vec![7u8; 16]);
        let b = Bytes::from_shared(Arc::clone(&arc));
        let back = b.into_shared();
        assert!(Arc::ptr_eq(&arc, &back), "no copy on the shared path");
        assert_eq!(&back[..], &[7u8; 16]);
        // A static buffer converts by copying once.
        let s = Bytes::from_static(b"abc").into_shared();
        assert_eq!(&s[..], b"abc");
    }
}
