//! Hermetic mini `proptest`: deterministic random testing with the API
//! subset this workspace uses (`proptest!`, range/`any`/regex-literal
//! strategies, `prop::collection::vec`, `prop_map`, `prop_oneof!`, the
//! `prop_assert*` family). No registry access is available, so the real
//! crate is replaced by this shim.
//!
//! Differences from real proptest, deliberately accepted:
//! * No shrinking — a failing case prints its inputs and panics.
//! * Cases are derived deterministically from the test name and case
//!   index, so every run explores the same inputs (reproducibility over
//!   coverage drift).
//! * String strategies support exactly the `"[chars]{lo,hi}"` char-class
//!   shape used by the workspace's tests.

use std::ops::{Range, RangeInclusive};

/// Run configuration: number of cases per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many sampled cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic test RNG (xoshiro-free splitmix64 stream; quality is
/// ample for input generation).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one (test, case) pair — stable across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [0, n); n must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// A value generator. `sample` draws one instance.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase for heterogeneous composition (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct OneOf<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> OneOf<T> {
    /// Build from non-empty choices.
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!choices.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { choices }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len());
        self.choices[i].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy wrapper returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// Tuples of strategies sample each component in order, like real
// proptest's tuple strategies.
macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

/// `"[chars]{lo,hi}"` char-class string strategy (the only regex shape
/// the workspace's tests use).
impl Strategy for &'static str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_charclass(self);
        let len = lo + rng.below(hi - lo + 1);
        (0..len)
            .map(|_| alphabet[rng.below(alphabet.len())])
            .collect()
    }
}

fn parse_charclass(pattern: &str) -> (Vec<char>, usize, usize) {
    let inner = pattern
        .strip_prefix('[')
        .and_then(|r| r.split_once(']'))
        .unwrap_or_else(|| panic!("unsupported string strategy: {pattern:?}"));
    let (class, rest) = inner;
    let mut alphabet = Vec::new();
    let chars: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        if i + 2 < chars.len() && chars[i + 1] == '-' {
            for c in chars[i]..=chars[i + 2] {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(chars[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty char class: {pattern:?}");
    let counts = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported string strategy: {pattern:?}"));
    let (lo, hi) = match counts.split_once(',') {
        Some((a, b)) => (a.trim().parse().unwrap(), b.trim().parse().unwrap()),
        None => {
            let n: usize = counts.trim().parse().unwrap();
            (n, n)
        }
    };
    assert!(lo <= hi && hi > 0, "bad repeat counts in {pattern:?}");
    (alphabet, lo, hi)
}

/// Namespaced strategy constructors (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Vector of `element` with a length drawn from `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            assert!(len.start < len.end, "empty length range");
            VecStrategy { element, len }
        }

        /// See [`vec`].
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = self.len.end - self.len.start;
                let n = self.len.start + rng.below(span);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Prints the failing case's inputs if the property body panics.
pub struct CaseGuard {
    /// Human-readable rendering of the sampled inputs.
    pub desc: String,
    /// Case index within the run.
    pub case: u32,
}

impl Drop for CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest shim: case #{} failed with inputs: {}",
                self.case, self.desc
            );
        }
    }
}

/// Property assertion; panics (with location info) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Equality assertion for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Inequality assertion for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skip the rest of this case when `cond` is false (coarse: the case
/// simply returns early; it still counts toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Defines `#[test]` functions that run their body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { @cfg ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( @cfg ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::TestRng::for_case(stringify!($name), __case);
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut __rng); )*
                    let __guard = $crate::CaseGuard {
                        case: __case,
                        desc: format!(
                            concat!($(stringify!($arg), "={:?} ",)*),
                            $(&$arg),*
                        ),
                    };
                    { $body }
                    drop(__guard);
                }
            }
        )*
    };
}

/// The commonly used names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use super::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = TestRng::for_case("strategies_sample_in_bounds", 0);
        for _ in 0..2000 {
            let v = (3u32..9).sample(&mut rng);
            assert!((3..9).contains(&v));
            let s = "[a-c0-1/._-]{2,5}".sample(&mut rng);
            assert!((2..=5).contains(&s.len()));
            assert!(s.chars().all(|c| "abc01/._-".contains(c)));
            let xs = prop::collection::vec(any::<u8>(), 1..4).sample(&mut rng);
            assert!((1..4).contains(&xs.len()));
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        #[derive(Debug, PartialEq)]
        enum E {
            A(u8),
            B(u8),
        }
        let strat = prop_oneof![(0u8..4).prop_map(E::A), (0u8..4).prop_map(E::B)];
        let mut rng = TestRng::for_case("oneof_and_map_compose", 1);
        let (mut saw_a, mut saw_b) = (false, false);
        for _ in 0..200 {
            match strat.sample(&mut rng) {
                E::A(v) => {
                    assert!(v < 4);
                    saw_a = true;
                }
                E::B(v) => {
                    assert!(v < 4);
                    saw_b = true;
                }
            }
        }
        assert!(saw_a && saw_b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: args bind, bodies run, assertions work.
        #[test]
        fn macro_binds_args(x in 1u32..10, ys in prop::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(ys.len() < 8);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("t", 3);
        let mut b = TestRng::for_case("t", 3);
        assert_eq!(
            (0..10).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..10).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
