//! API-compatible subset of `rand` 0.10 for hermetic builds (no registry
//! access). [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 —
//! not cryptographic, deterministic for a given seed, which is exactly
//! what the reproducible fault-injection harness needs.

use std::ops::{Range, RangeInclusive};

/// Core random-source trait: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    /// Deterministically construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the full bit stream.
pub trait Random: Sized {
    /// Draw one value from `rng`.
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Random for u32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}
impl Random for u16 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}
impl Random for u8 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}
impl Random for usize {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}
impl Random for bool {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Random for f64 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Random for f32 {
    fn random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one value in the range from `rng`; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u = <$t as Random>::random(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A biased coin flip: true with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

/// In-place slice operations driven by an RNG.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    /// A uniformly chosen element (`None` when empty).
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..=i);
            self.swap(i, j);
        }
    }
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias: this shim's small RNG is the same generator.
    pub type SmallRng = StdRng;
}

/// The commonly used names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::{Random, Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_float_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.random_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = r.random_range(1u32..=512);
            assert!((1..=512).contains(&w));
            let f = r.random_range(0.1f64..300.0);
            assert!((0.1..300.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn range_distribution_covers_all_values() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
